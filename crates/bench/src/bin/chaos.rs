//! Chaos gate — deterministic fault-injection runs over paper-shaped
//! workloads (beyond the paper; CI job `chaos-gate`).
//!
//! For every seed in a fixed matrix, the gate derives the *expected*
//! outcome from the pure [`rustflow::chaos::ChaosSpec`] fault plan (no
//! execution needed), then runs the workload under the fault-tolerance
//! layer and checks the executor delivered exactly that outcome:
//!
//! * **wavefront / continue_all** — seeded panics; every fault-free task
//!   body still runs; the run fails iff the plan contains a panic.
//! * **wavefront / fail_fast** — the first panic cancels the rest; no
//!   more than the fault-free plan count can have run.
//! * **wavefront / retry** — the same faults made transient (each point
//!   panics once); `retry(1)` rescues the whole run, with one retry
//!   charged per planned panic.
//! * **wavefront / deadline** — seeded delays plus a cancellation-aware
//!   spinning tail; `run_timeout` must degrade to `Cancelled`.
//! * **dnn_epoch / continue_all** — a layered epoch pipeline under
//!   `run_n`; the batch stops at the first epoch whose plan panics, with
//!   every fault-free body of the executed epochs completed.
//! * **dnn_epoch / retry** — transient per-(node, epoch) faults under
//!   `run_n`; all epochs complete.
//! * **dnn_epoch / cancel** — `cancel()` mid-batch; the handle resolves
//!   `Cancelled` and the remaining epochs are abandoned.
//!
//! Results land in `<out>/chaos_report.json`; any mismatch makes the
//! process exit non-zero, failing the CI job.

use rustflow::chaos::{ChaosSpec, Fault};
use rustflow::{this_task, Executor, FailurePolicy, RunError, Taskflow};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tf_bench::harness::Cli;

/// The fixed seed matrix CI sweeps. Chosen arbitrarily and then frozen:
/// a new seed only joins after its expected plan has been reviewed.
const SEEDS: &[u64] = &[11, 23, 42, 77, 1802];

/// Panic rate for the fault scenarios (40‰ ≈ a couple dozen faults on
/// the wavefront grid).
const PANIC_PERMILLE: u16 = 40;

struct Outcome {
    workload: &'static str,
    scenario: &'static str,
    seed: u64,
    total: u64,
    plan_panics: u64,
    completed: u64,
    skipped: u64,
    retries: u64,
    result: String,
    pass: bool,
    note: String,
}

fn main() {
    let cli = Cli::parse();
    // Seeded panics are the point of this gate; the default hook would
    // bury the scenario table under hundreds of expected backtraces. The
    // messages survive in each run's `TaskPanic` either way.
    std::panic::set_hook(Box::new(|_| {}));
    let mut outcomes: Vec<Outcome> = Vec::new();
    println!("chaos gate: {} seeds × 7 scenarios", SEEDS.len());
    for &seed in SEEDS {
        outcomes.push(wavefront_continue_all(seed));
        outcomes.push(wavefront_fail_fast(seed));
        outcomes.push(wavefront_retry(seed));
        outcomes.push(wavefront_deadline(seed));
        outcomes.push(dnn_continue_all(seed));
        outcomes.push(dnn_retry(seed));
        outcomes.push(dnn_cancel(seed));
    }
    let failed = outcomes.iter().filter(|o| !o.pass).count();
    for o in &outcomes {
        println!(
            "  {} {:10} {:12} seed={:<5} total={:<5} panics={:<3} completed={:<5} \
             skipped={:<5} retries={:<3} result={} {}",
            if o.pass { "ok  " } else { "FAIL" },
            o.workload,
            o.scenario,
            o.seed,
            o.total,
            o.plan_panics,
            o.completed,
            o.skipped,
            o.retries,
            o.result,
            o.note,
        );
    }
    write_report(&cli, &outcomes);
    if failed > 0 {
        eprintln!("chaos gate: {failed} scenario(s) diverged from their seeded plan");
        std::process::exit(1);
    }
    println!(
        "chaos gate: all {} scenarios match their plans",
        outcomes.len()
    );
}

/// Builds a `dim × dim` wavefront of chaos-wrapped tasks (node `(i, j)`
/// precedes `(i+1, j)` and `(i, j+1)`), each body bumping `completed`.
/// `transient` reroutes planned panics through a fire-once latch instead
/// of the pure injector; `retry` sets each task's retry budget.
fn build_wavefront(
    tf: &Taskflow,
    spec: ChaosSpec,
    dim: usize,
    completed: &Arc<AtomicUsize>,
    transient: bool,
    retry: u32,
) {
    let tasks: Vec<Vec<rustflow::Task<'_>>> = (0..dim)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let node = (i * dim + j) as u64;
                    let c = Arc::clone(completed);
                    let body = move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    };
                    let t = if transient {
                        tf.emplace(transient_wrap(spec, node, body))
                    } else {
                        tf.emplace(spec.wrap(node, body))
                    };
                    t.name(format!("w{i}_{j}")).retry(retry)
                })
                .collect()
        })
        .collect();
    for i in 0..dim {
        for j in 0..dim {
            if i + 1 < dim {
                tasks[i][j].precede(tasks[i + 1][j]);
            }
            if j + 1 < dim {
                tasks[i][j].precede(tasks[i][j + 1]);
            }
        }
    }
}

/// A chaos wrapper whose planned panics fire **once per (node,
/// iteration)** point — the transient-fault model that a retry budget is
/// meant to absorb. Delays stay pure.
fn transient_wrap(
    spec: ChaosSpec,
    node: u64,
    mut body: impl FnMut() + Send + 'static,
) -> impl FnMut() + Send + 'static {
    // Iterations execute in order per node, so "already fired at this
    // iteration" collapses to remembering the last fired iteration.
    let fired = AtomicU64::new(u64::MAX);
    move || {
        let iteration = this_task::iteration().unwrap_or(0);
        match spec.fault(node, iteration) {
            Fault::Panic if fired.swap(iteration, Ordering::Relaxed) != iteration => {
                panic!("chaos: transient panic (node={node}, iteration={iteration})")
            }
            Fault::Delay(d) => std::thread::sleep(d),
            _ => {}
        }
        body();
    }
}

fn panics_in_plan(spec: ChaosSpec, total: u64, iteration: u64) -> u64 {
    (0..total)
        .filter(|&n| spec.fault(n, iteration) == Fault::Panic)
        .count() as u64
}

fn wavefront_continue_all(seed: u64) -> Outcome {
    const DIM: usize = 24;
    let total = (DIM * DIM) as u64;
    let spec = ChaosSpec::new(seed).panic_permille(PANIC_PERMILLE);
    let plan_panics = panics_in_plan(spec, total, 0);
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let completed = Arc::new(AtomicUsize::new(0));
    build_wavefront(&tf, spec, DIM, &completed, false, 0);
    let before = ex.stats();
    let result = tf.run().get();
    let d = ex.stats().delta(&before).total();
    let completed = completed.load(Ordering::Relaxed) as u64;
    // ContinueAll: every fault-free body ran; failure iff the plan says so.
    let pass = completed == total - plan_panics && result.is_err() == (plan_panics > 0);
    Outcome {
        workload: "wavefront",
        scenario: "continue_all",
        seed,
        total,
        plan_panics,
        completed,
        skipped: d.skipped,
        retries: d.retries,
        result: fmt_result(&result),
        pass,
        note: String::new(),
    }
}

fn wavefront_fail_fast(seed: u64) -> Outcome {
    const DIM: usize = 24;
    let total = (DIM * DIM) as u64;
    let spec = ChaosSpec::new(seed).panic_permille(PANIC_PERMILLE);
    let plan_panics = panics_in_plan(spec, total, 0);
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    tf.set_failure_policy(FailurePolicy::FailFast);
    let completed = Arc::new(AtomicUsize::new(0));
    build_wavefront(&tf, spec, DIM, &completed, false, 0);
    let before = ex.stats();
    let result = tf.run().get();
    let d = ex.stats().delta(&before).total();
    let completed = completed.load(Ordering::Relaxed) as u64;
    // FailFast: the run fails iff the plan panics, never more bodies run
    // than ContinueAll would allow, and every node is accounted for as
    // completed, skipped, or a panicked attempt.
    let pass = result.is_err() == (plan_panics > 0)
        && completed <= total - plan_panics
        && completed + d.skipped <= total
        && completed + d.skipped + plan_panics >= total;
    Outcome {
        workload: "wavefront",
        scenario: "fail_fast",
        seed,
        total,
        plan_panics,
        completed,
        skipped: d.skipped,
        retries: d.retries,
        result: fmt_result(&result),
        pass,
        note: String::new(),
    }
}

fn wavefront_retry(seed: u64) -> Outcome {
    const DIM: usize = 24;
    let total = (DIM * DIM) as u64;
    let spec = ChaosSpec::new(seed).panic_permille(PANIC_PERMILLE);
    let plan_panics = panics_in_plan(spec, total, 0);
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let completed = Arc::new(AtomicUsize::new(0));
    // One retry per task absorbs every fire-once transient fault.
    build_wavefront(&tf, spec, DIM, &completed, true, 1);
    let before = ex.stats();
    let result = tf.run().get();
    let d = ex.stats().delta(&before).total();
    let completed = completed.load(Ordering::Relaxed) as u64;
    let pass = result.is_ok() && completed == total && d.retries == plan_panics;
    Outcome {
        workload: "wavefront",
        scenario: "retry",
        seed,
        total,
        plan_panics,
        completed,
        skipped: d.skipped,
        retries: d.retries,
        result: fmt_result(&result),
        pass,
        note: String::new(),
    }
}

fn wavefront_deadline(seed: u64) -> Outcome {
    const DIM: usize = 12;
    let total = (DIM * DIM) as u64;
    let spec = ChaosSpec::new(seed).delay_permille(1000, 300);
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let completed = Arc::new(AtomicUsize::new(0));
    build_wavefront(&tf, spec, DIM, &completed, false, 0);
    // A cancellation-aware tail that never finishes on its own
    // guarantees the deadline fires for every seed.
    tf.emplace(|| {
        while !this_task::is_cancelled() {
            std::thread::yield_now();
        }
    })
    .name("tail");
    let before = ex.stats();
    let result = tf.run_timeout(Duration::from_millis(50));
    let d = ex.stats().delta(&before).total();
    let pass = result == Err(RunError::Cancelled);
    Outcome {
        workload: "wavefront",
        scenario: "deadline",
        seed,
        total: total + 1,
        plan_panics: 0,
        completed: completed.load(Ordering::Relaxed) as u64,
        skipped: d.skipped,
        retries: d.retries,
        result: fmt_result(&result),
        pass,
        note: String::new(),
    }
}

/// Builds one epoch of a DNN-shaped pipeline: `layers` ranks of `width`
/// chaos-wrapped tasks with full bipartite dependencies between
/// consecutive ranks (forward pass shape); re-run per epoch via `run_n`.
fn build_dnn_epoch(
    tf: &Taskflow,
    spec: ChaosSpec,
    layers: usize,
    width: usize,
    completed: &Arc<AtomicUsize>,
    transient: bool,
    retry: u32,
) {
    let ranks: Vec<Vec<rustflow::Task<'_>>> = (0..layers)
        .map(|l| {
            (0..width)
                .map(|u| {
                    let node = (l * width + u) as u64;
                    let c = Arc::clone(completed);
                    let body = move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    };
                    let t = if transient {
                        tf.emplace(transient_wrap(spec, node, body))
                    } else {
                        tf.emplace(spec.wrap(node, body))
                    };
                    t.name(format!("l{l}_u{u}")).retry(retry)
                })
                .collect()
        })
        .collect();
    for l in 1..layers {
        for prev in &ranks[l - 1] {
            for cur in &ranks[l] {
                prev.precede(*cur);
            }
        }
    }
}

fn dnn_continue_all(seed: u64) -> Outcome {
    const LAYERS: usize = 8;
    const WIDTH: usize = 8;
    const EPOCHS: u64 = 5;
    let total = (LAYERS * WIDTH) as u64;
    let spec = ChaosSpec::new(seed).panic_permille(PANIC_PERMILLE);
    // run_n semantics: the first epoch whose plan panics resolves the
    // batch with that epoch's error and abandons the rest.
    let first_bad = (0..EPOCHS).find(|&e| panics_in_plan(spec, total, e) > 0);
    let epochs_run = first_bad.map_or(EPOCHS, |e| e + 1);
    let expect_completed: u64 = (0..epochs_run)
        .map(|e| total - panics_in_plan(spec, total, e))
        .sum();
    let plan_panics: u64 = (0..epochs_run)
        .map(|e| panics_in_plan(spec, total, e))
        .sum();
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let completed = Arc::new(AtomicUsize::new(0));
    build_dnn_epoch(&tf, spec, LAYERS, WIDTH, &completed, false, 0);
    let result = tf.run_n(EPOCHS).get();
    let completed = completed.load(Ordering::Relaxed) as u64;
    let pass = completed == expect_completed && result.is_err() == first_bad.is_some();
    Outcome {
        workload: "dnn_epoch",
        scenario: "continue_all",
        seed,
        total: total * EPOCHS,
        plan_panics,
        completed,
        skipped: 0,
        retries: 0,
        result: fmt_result(&result),
        pass,
        note: format!("epochs_run={epochs_run}"),
    }
}

fn dnn_retry(seed: u64) -> Outcome {
    const LAYERS: usize = 8;
    const WIDTH: usize = 8;
    const EPOCHS: u64 = 5;
    let total = (LAYERS * WIDTH) as u64;
    let spec = ChaosSpec::new(seed).panic_permille(PANIC_PERMILLE);
    let plan_panics: u64 = (0..EPOCHS).map(|e| panics_in_plan(spec, total, e)).sum();
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let completed = Arc::new(AtomicUsize::new(0));
    build_dnn_epoch(&tf, spec, LAYERS, WIDTH, &completed, true, 1);
    let before = ex.stats();
    let result = tf.run_n(EPOCHS).get();
    let d = ex.stats().delta(&before).total();
    let completed = completed.load(Ordering::Relaxed) as u64;
    let pass = result.is_ok() && completed == total * EPOCHS && d.retries == plan_panics;
    Outcome {
        workload: "dnn_epoch",
        scenario: "retry",
        seed,
        total: total * EPOCHS,
        plan_panics,
        completed,
        skipped: d.skipped,
        retries: d.retries,
        result: fmt_result(&result),
        pass,
        note: String::new(),
    }
}

fn dnn_cancel(seed: u64) -> Outcome {
    const LAYERS: usize = 8;
    const WIDTH: usize = 8;
    const EPOCHS: u64 = 10_000;
    let total = (LAYERS * WIDTH) as u64;
    let spec = ChaosSpec::new(seed); // no faults: pure cancel scenario
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let completed = Arc::new(AtomicUsize::new(0));
    build_dnn_epoch(&tf, spec, LAYERS, WIDTH, &completed, false, 0);
    let run = tf.run_n(EPOCHS);
    // Let a few epochs land, then pull the plug mid-batch.
    while completed.load(Ordering::Relaxed) < (3 * total) as usize {
        std::thread::yield_now();
    }
    let requested = run.cancel();
    let result = run.get();
    let completed = completed.load(Ordering::Relaxed) as u64;
    let pass = requested && result == Err(RunError::Cancelled) && completed < total * EPOCHS;
    Outcome {
        workload: "dnn_epoch",
        scenario: "cancel",
        seed,
        total: total * EPOCHS,
        plan_panics: 0,
        completed,
        skipped: 0,
        retries: 0,
        result: fmt_result(&result),
        pass,
        note: String::new(),
    }
}

fn fmt_result(r: &Result<(), RunError>) -> String {
    match r {
        Ok(()) => "ok".into(),
        Err(RunError::Cancelled) => "cancelled".into(),
        Err(e) if e.as_panic().is_some() => "panic".into(),
        Err(_) => "error".into(),
    }
}

fn write_report(cli: &Cli, outcomes: &[Outcome]) {
    std::fs::create_dir_all(&cli.out).expect("cannot create output directory");
    let mut json = String::from("{\n  \"schema\": 1,\n  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"scenario\": \"{}\", \"seed\": {}, \
             \"total\": {}, \"plan_panics\": {}, \"completed\": {}, \"skipped\": {}, \
             \"retries\": {}, \"result\": \"{}\", \"pass\": {}}}{}\n",
            o.workload,
            o.scenario,
            o.seed,
            o.total,
            o.plan_panics,
            o.completed,
            o.skipped,
            o.retries,
            o.result,
            o.pass,
            if i + 1 < outcomes.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = cli.out.join("chaos_report.json");
    std::fs::write(&path, &json).expect("cannot write chaos report");
    // The report must stay machine-readable: parse it back.
    tf_bench::json::parse(&json).expect("chaos report must be valid JSON");
    println!("  -> {}", path.display());
}
