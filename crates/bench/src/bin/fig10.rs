//! Figure 10 — Scalability and CPU profile on million-gate designs.
//!
//! * `--part scaling`: full-timing runtime vs thread count on
//!   netcard-shaped (1.4M gates, paper) and leon3mp-shaped (1.2M gates)
//!   circuits, v1 (levelized) vs v2 (rustflow). The default scales the
//!   designs down (`--full` for paper scale).
//! * `--part util`: CPU-utilization profile over time while v2 runs
//!   repeated full updates on leon3mp, sampled from a
//!   [`rustflow::BusyCounter`] observer at several worker counts. The run
//!   also records the full scheduler lifecycle through a ring-buffered
//!   [`rustflow::Tracer`], writes it as `<out>/trace.json` (loadable in
//!   ui.perfetto.dev / chrome://tracing), dumps the per-worker counters
//!   in Prometheus text format to `<out>/fig10_metrics.prom`, and prints
//!   the traced-vs-untraced runtime ratio so tracing overhead stays
//!   honest.

use rustflow::{BusyCounter, Executor, Tracer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tf_baselines::Pool;
use tf_bench::harness::{time_ms, Cli, Report};
use tf_timer::{CircuitSpec, Engine, Timer};

fn main() {
    let cli = Cli::parse();
    if cli.wants_part("scaling") {
        scaling(&cli);
    }
    if cli.wants_part("util") {
        utilization(&cli);
    }
}

fn scaling(cli: &Cli) {
    let scale = if cli.full { 1.0 } else { 0.02 };
    let threads = cli.thread_sweep(if cli.full {
        &[1, 2, 4, 8, 16, 32, 64]
    } else {
        &[1, 2, 4, 8]
    });
    println!("Figure 10 (left): full-timing runtime vs threads");
    let mut report = Report::new(
        cli,
        "fig10_scaling",
        &["circuit", "gates", "threads", "v1_ms", "v2_ms"],
    );
    report.print_header();
    for spec in [
        CircuitSpec::netcard().scaled(scale),
        CircuitSpec::leon3mp().scaled(scale),
    ] {
        let circuit = spec.generate();
        let timer = Timer::new(circuit);
        for &t in &threads {
            let pool = Pool::new(t);
            let v1_ms = time_ms(|| {
                timer.full_update(&Engine::V1Levelized(&pool));
            });
            let executor = Executor::new(t);
            let v2_ms = time_ms(|| {
                timer.full_update(&Engine::V2Rustflow(&executor));
            });
            report.row(&[
                spec.name.to_string(),
                spec.gates.to_string(),
                t.to_string(),
                format!("{v1_ms:.1}"),
                format!("{v2_ms:.1}"),
            ]);
        }
    }
    report.save();
    println!(
        "\nShape note: the paper reports v2 within 3-4% of v1 at 1 CPU and \
         faster at >=2 CPUs. Reproducing that ratio requires (a) per-pin \
         compute that dwarfs per-task overhead (the authors' full NLDM \
         timer) and (b) real cores for the barrier elimination to pay off; \
         on few-core containers v2's per-update graph construction \
         (~0.4us/gate) is visible. The incremental experiment (fig9) is \
         where the paper's v1-vs-v2 story lives, and it reproduces."
    );
}

fn utilization(cli: &Cli) {
    let scale = if cli.full { 1.0 } else { 0.02 };
    let spec = CircuitSpec::leon3mp().scaled(scale);
    let circuit = spec.generate();
    let timer = Arc::new(Timer::new(circuit));
    let worker_counts = cli.thread_sweep(if cli.full {
        &[8, 16, 32, 64]
    } else {
        &[2, 4, 8]
    });
    println!("Figure 10 (right): busy-worker percentage over time (leon3mp)");
    let mut report = Report::new(
        cli,
        "fig10_util",
        &["workers", "sample_ms", "busy_pct", "tasks_done"],
    );
    report.print_header();
    let mut trace_json: Option<String> = None;
    let mut prom_text: Option<String> = None;
    for &workers in &worker_counts {
        let executor = Executor::new(workers);

        // Baseline: one untraced update, to report tracing overhead.
        let untraced_ms = time_ms(|| {
            timer.full_update(&Engine::V2Rustflow(&executor));
        });

        let counter = Arc::new(BusyCounter::new());
        executor.observe(Arc::clone(&counter) as Arc<dyn rustflow::ExecutorObserver>);
        // Sized so one full update fits in each lane between collects.
        let tracer = Arc::new(Tracer::with_capacity(workers, 1 << 16));
        executor.observe(Arc::clone(&tracer) as Arc<dyn rustflow::ExecutorObserver>);

        // Sample in a side thread while v2 runs repeated full updates
        // (the paper profiles utilization over the run's lifetime).
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let counter = Arc::clone(&counter);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut samples = Vec::new();
                let start = std::time::Instant::now();
                while !stop.load(Ordering::Acquire) {
                    samples.push((
                        start.elapsed().as_secs_f64() * 1e3,
                        counter.busy(),
                        counter.executed(),
                    ));
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                samples
            })
        };
        let updates = if cli.full { 4 } else { 3 };
        let mut traced_ms = 0.0;
        for _ in 0..updates {
            traced_ms += time_ms(|| {
                timer.full_update(&Engine::V2Rustflow(&executor));
            });
            // Drain the fixed-capacity rings between updates so long runs
            // keep their full event history.
            tracer.collect();
        }
        traced_ms /= updates as f64;
        stop.store(true, Ordering::Release);
        let samples = sampler.join().expect("sampler panicked");
        for (ms, busy, done) in samples {
            report.row(&[
                workers.to_string(),
                format!("{ms:.1}"),
                format!("{:.1}", 100.0 * busy as f64 / workers as f64),
                done.to_string(),
            ]);
        }
        println!(
            "# workers={workers}: untraced {untraced_ms:.1} ms/update, traced \
             {traced_ms:.1} ms/update ({:.2}x), {} events dropped",
            traced_ms / untraced_ms.max(1e-9),
            tracer.dropped()
        );
        // Keep the largest sweep's artifacts (they have the most lanes).
        trace_json = Some(tracer.chrome_trace_json());
        prom_text = Some(executor.stats().prometheus_text());
    }
    report.save();

    if let (Some(json), Some(prom)) = (trace_json, prom_text) {
        std::fs::create_dir_all(&cli.out).expect("cannot create output directory");
        let trace_path = cli.out.join("trace.json");
        std::fs::write(&trace_path, json).expect("cannot write trace.json");
        let prom_path = cli.out.join("fig10_metrics.prom");
        std::fs::write(&prom_path, prom).expect("cannot write metrics");
        println!(
            "scheduler trace -> {} (open in ui.perfetto.dev); \
             counters -> {}",
            trace_path.display(),
            prom_path.display()
        );
    }
}
