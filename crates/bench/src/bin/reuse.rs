//! Rebuild-vs-reuse: the cost of re-creating a task graph every
//! iteration versus freezing it once and re-arming it with
//! `Taskflow::run_n`.
//!
//! The workload is an iterative ~1,000-task layered DAG with trivial task
//! bodies, the regime where per-iteration graph construction (node
//! allocation, closure boxing, edge wiring, sanitation) dominates — the
//! motivating case for reusable topologies (Taskflow v2's `run_n`, which
//! Cpp-Taskflow's one-shot §III-C dispatch model lacks). Both paths
//! execute the identical DAG on the identical executor:
//!
//! * **rebuild** — each iteration builds a fresh `Taskflow` (emplace +
//!   precede + sanitize) and one-shot dispatches it, the only option
//!   under the paper's dispatch model;
//! * **reuse** — the graph is frozen once and `run_n(iterations)` re-arms
//!   the same topology per iteration (join counters reset from static
//!   in-degrees).
//!
//! Writes `<out>/bench_reuse.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tf_baselines::Dag;
use tf_bench::harness::{time_ms, Cli};
use tf_workloads::run::{run_rustflow, ReusableRustflow};

/// Layered DAG: `layers x width` trivial tasks, each (past the first
/// layer) fanning in from three tasks of the previous layer.
fn build_dag(layers: usize, width: usize, counter: &Arc<AtomicU64>) -> (Dag, usize) {
    let mut dag = Dag::with_capacity(layers * width);
    let mut edges = 0;
    let mut prev: Vec<usize> = Vec::new();
    for l in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for w in 0..width {
            let c = Arc::clone(counter);
            let id = dag.add(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            if l > 0 {
                for k in 0..3 {
                    dag.edge(prev[(w + k) % width], id);
                    edges += 1;
                }
            }
            cur.push(id);
        }
        prev = cur;
    }
    (dag, edges)
}

fn main() {
    let cli = Cli::parse();
    let threads = *cli.thread_sweep(&[4]).first().expect("nonempty");
    let (layers, width) = if cli.full { (250, 10) } else { (100, 10) };
    let iterations: u64 = 1000;
    let nodes = layers * width;

    let counter = Arc::new(AtomicU64::new(0));
    let (dag, edges) = build_dag(layers, width, &counter);
    println!(
        "Topology reuse: {nodes} tasks / {edges} edges, {iterations} iterations, {threads} threads"
    );

    let ex = rustflow::Executor::new(threads);
    // Warm-up: fault in the executor, the allocator, and both code paths.
    run_rustflow(&dag, &ex);
    let warm = ReusableRustflow::new(&dag, &ex);
    warm.run_n(1).expect("warm-up failed");
    counter.store(0, Ordering::Relaxed);

    // Rebuild baseline: construction + one-shot dispatch, every iteration.
    let rebuild_ms = time_ms(|| {
        for _ in 0..iterations {
            run_rustflow(&dag, &ex);
        }
    });
    assert_eq!(
        counter.load(Ordering::Relaxed),
        nodes as u64 * iterations,
        "rebuild path lost tasks"
    );
    counter.store(0, Ordering::Relaxed);

    // Reuse: construction once, then run_n re-arms the frozen topology.
    let reuse_ms = time_ms(|| {
        let reusable = ReusableRustflow::new(&dag, &ex);
        reusable.run_n(iterations).expect("reuse batch failed");
    });
    assert_eq!(
        counter.load(Ordering::Relaxed),
        nodes as u64 * iterations,
        "reuse path lost tasks"
    );

    let rebuild_us = rebuild_ms * 1e3 / iterations as f64;
    let reuse_us = reuse_ms * 1e3 / iterations as f64;
    let speedup = rebuild_ms / reuse_ms;
    println!("  rebuild: {rebuild_ms:.1} ms total, {rebuild_us:.1} us/iteration");
    println!("  reuse:   {reuse_ms:.1} ms total, {reuse_us:.1} us/iteration");
    println!("  per-iteration speedup: {speedup:.2}x");

    std::fs::create_dir_all(&cli.out).expect("cannot create output directory");
    let path = cli.out.join("bench_reuse.json");
    let json = format!(
        "{{\n  \"benchmark\": \"topology_reuse\",\n  \"nodes\": {nodes},\n  \"edges\": {edges},\n  \"iterations\": {iterations},\n  \"threads\": {threads},\n  \"rebuild\": {{ \"total_ms\": {rebuild_ms:.3}, \"per_iteration_us\": {rebuild_us:.3} }},\n  \"reuse\": {{ \"total_ms\": {reuse_ms:.3}, \"per_iteration_us\": {reuse_us:.3} }},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    std::fs::write(&path, json).expect("cannot write bench_reuse.json");
    println!("  -> {}", path.display());
}
