//! Serving-path benchmark and CI regression gate.
//!
//! Models a task-graph *service*: C client threads each keep a bounded
//! pipeline of small topologies in flight through the multi-tenant
//! front door (`Taskflow::run_on`), one tenant per client. Every
//! configuration is measured twice — once with the lock-free MPMC
//! injector (the default) and once with `mutexed_injector(true)`, the
//! ablation that reproduces the seed's `Mutex<VecDeque>` submission
//! path on the identical code — so the report is a direct A/B of the
//! injector under increasing client parallelism.
//!
//! Reported per configuration (best of `--repeats` runs by throughput):
//!
//! * submission throughput (resolved submissions / second);
//! * submit-to-resolve latency percentiles (p50 / p99 / p999, µs),
//!   measured per submission under the pipelined load.
//!
//! Modes:
//!
//! * default — run and write `<out>/serving_report.json`;
//! * `--write-baseline` — additionally write the committed gate baseline
//!   (`<out>/serving_baseline.json`);
//! * `--check` — the CI gate: (1) the lock-free injector must beat the
//!   mutexed ablation's throughput outright at at least one client
//!   count >= 4 and stay within 15% of it at the most contended one,
//!   (2) no configuration may regress past the baseline's tolerance
//!   band (one-sided: faster/lower-latency runs always pass), and
//!   (3) the executor's own `/metrics` latency histograms must agree
//!   with the client-measured percentiles (see below). Exit non-zero on
//!   violation.
//!
//! Every invocation also closes the observability loop: one extra
//! configuration runs with the introspection server attached and an
//! active scraper, then the per-tenant `rustflow_tenant_latency_us`
//! `e2e` histograms are merged across tenants and their interpolated
//! p50/p99 compared against the exact client-side samples. The two
//! views measure the same interval from opposite ends (client stamps
//! around `run_on` → `get`, server stamps submit → finalize), so they
//! must land within one log-linear bucket width of each other.

use rustflow::{Executor, ExecutorBuilder, Histogram, Taskflow, TenantQos};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tf_bench::{json, prom};

/// Per-client pipeline depth: how many submissions a client keeps in
/// flight before waiting out the oldest. Deep enough to keep the
/// injector hot, shallow enough that latency stays submission-bound.
const WINDOW: usize = 16;

struct Flags {
    out: std::path::PathBuf,
    workers: usize,
    per_client: usize,
    repeats: usize,
    check: bool,
    write_baseline: bool,
    baseline: Option<std::path::PathBuf>,
}

fn parse_flags() -> Flags {
    let mut f = Flags {
        out: std::path::PathBuf::from("results"),
        workers: 4,
        per_client: 1500,
        repeats: 3,
        check: false,
        write_baseline: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => f.out = args.next().expect("--out needs a directory").into(),
            "--workers" => {
                f.workers = args
                    .next()
                    .expect("--workers needs a count")
                    .parse()
                    .expect("bad worker count");
            }
            "--per-client" => {
                f.per_client = args
                    .next()
                    .expect("--per-client needs a count")
                    .parse()
                    .expect("bad submission count");
            }
            "--repeats" => {
                f.repeats = args
                    .next()
                    .expect("--repeats needs a count")
                    .parse()
                    .expect("bad repeat count");
            }
            "--check" => f.check = true,
            "--write-baseline" => f.write_baseline = true,
            "--baseline" => f.baseline = Some(args.next().expect("--baseline needs a path").into()),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --out <dir> | --workers n | --per-client n | --repeats n | --check | --write-baseline | --baseline <path>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    f
}

/// One measured configuration.
struct Measured {
    name: String,
    clients: usize,
    mutexed: bool,
    submissions: usize,
    wall_ms: f64,
    throughput_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// A single-task request: every task enters through the injector (a
/// chain's successors would run from worker-local deques and dilute the
/// submission path this bench exists to measure), so dispatch, execution,
/// and finalize all run but the front door stays the bottleneck.
fn request_flow(ex: Arc<Executor>) -> Taskflow {
    let tf = Taskflow::with_executor(ex);
    tf.emplace(|| {});
    tf
}

/// Fans out `clients` pipelined client threads (one tenant each) against
/// `ex`; returns the sorted per-submission submit→resolve latencies (µs).
fn run_clients(ex: &Arc<Executor>, clients: usize, per_client: usize) -> Vec<f64> {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let ex = Arc::clone(ex);
            let tenant = ex.tenant_with(
                &format!("client-{c}"),
                TenantQos {
                    weight: 1,
                    max_queued: WINDOW * 2,
                    ..TenantQos::default()
                },
            );
            std::thread::spawn(move || {
                let mut lat_us = Vec::with_capacity(per_client);
                let mut inflight: VecDeque<(Instant, Taskflow, rustflow::RunHandle)> =
                    VecDeque::with_capacity(WINDOW);
                for _ in 0..per_client {
                    let tf = request_flow(ex.clone());
                    let t0 = Instant::now();
                    let h = tf.run_on(&tenant).expect("executor is not shutting down");
                    inflight.push_back((t0, tf, h));
                    if inflight.len() == WINDOW {
                        let (t0, _tf, h) = inflight.pop_front().expect("window is full");
                        h.get().expect("request must succeed");
                        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                }
                for (t0, _tf, h) in inflight {
                    h.get().expect("request must succeed");
                    lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                lat_us
            })
        })
        .collect();
    let mut lat_us = Vec::with_capacity(clients * per_client);
    for h in handles {
        lat_us.extend(h.join().expect("client thread panicked"));
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    lat_us
}

/// One run of `clients` pipelined client threads against a fresh
/// executor; returns (wall_ms, sorted per-submission latencies in µs).
fn run_once(clients: usize, mutexed: bool, workers: usize, per_client: usize) -> (f64, Vec<f64>) {
    let ex = ExecutorBuilder::new()
        .workers(workers)
        .injector_capacity(256)
        .mutexed_injector(mutexed)
        .build();
    let start = Instant::now();
    let lat_us = run_clients(&ex, clients, per_client);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (wall_ms, lat_us)
}

/// Measures both injector variants at one client count with the A/B
/// repeats *interleaved* (lockfree, mutexed, lockfree, …) so slow drift
/// in the container's load hits both sides equally, keeping the best
/// run per side. Returns (lockfree, mutexed).
fn measure_pair(clients: usize, flags: &Flags) -> (Measured, Measured) {
    let submissions = clients * flags.per_client;
    let mut best: [Option<(f64, Vec<f64>)>; 2] = [None, None];
    for _ in 0..flags.repeats.max(1) {
        for (side, mutexed) in [(0, false), (1, true)] {
            let (wall_ms, lat) = run_once(clients, mutexed, flags.workers, flags.per_client);
            if best[side].as_ref().is_none_or(|(b, _)| wall_ms < *b) {
                best[side] = Some((wall_ms, lat));
            }
        }
    }
    let mut out = best.into_iter().zip([false, true]).map(|(b, mutexed)| {
        let (wall_ms, lat) = b.expect("at least one repeat ran");
        Measured {
            name: format!(
                "{}_c{clients}",
                if mutexed { "mutexed" } else { "lockfree" }
            ),
            clients,
            mutexed,
            submissions,
            wall_ms,
            throughput_per_s: submissions as f64 / (wall_ms / 1e3),
            p50_us: rustflow::percentile(&lat, 0.50),
            p99_us: rustflow::percentile(&lat, 0.99),
            p999_us: rustflow::percentile(&lat, 0.999),
        }
    });
    let lockfree = out.next().expect("two sides");
    let mutexed = out.next().expect("two sides");
    (lockfree, mutexed)
}

/// Client count for the server-agreement configuration: contended enough
/// that the histograms see a real latency spread, cheap next to the sweep.
const AGREE_CLIENTS: usize = 4;

fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect introspection endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("socket timeout");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: gate\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("malformed response");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "unexpected status for {target}: {}",
        head.lines().next().unwrap_or("")
    );
    body.to_string()
}

/// Merges the `phase="e2e"` series of `rustflow_tenant_latency_us` across
/// all tenants in a scraped exposition into one [`Histogram`]: the bucket
/// layout is identical for every shard, so the merge is a de-cumulate and
/// a per-bucket sum.
fn merged_e2e(text: &str) -> Option<Histogram> {
    let exposition = prom::parse(text).ok()?;
    let family = exposition.family("rustflow_tenant_latency_us")?;
    let mut bounds: Vec<u64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut sum = 0u64;
    let mut tenants = 0usize;
    // Each tenant's bucket samples are contiguous and in `le` order (the
    // exporter renders one series at a time and the strict parser rejects
    // torn expositions), so a running cumulative de-cumulates each series
    // and the shared `idx` folds every tenant onto one bucket layout.
    let (mut prev_cum, mut idx) = (0.0f64, 0usize);
    for sample in &family.samples {
        if sample.label("phase") != Some("e2e") {
            continue;
        }
        match sample.name.as_str() {
            "rustflow_tenant_latency_us_bucket" => {
                let le = sample.label("le").expect("bucket without le");
                if le == "+Inf" {
                    tenants += 1;
                    (prev_cum, idx) = (0.0, 0);
                    continue;
                }
                let bound: u64 = le.parse().expect("finite le is an integer");
                if idx == bounds.len() {
                    bounds.push(bound);
                    counts.push(0);
                }
                assert_eq!(bounds[idx], bound, "tenants share one bucket layout");
                counts[idx] += (sample.value - prev_cum) as u64;
                prev_cum = sample.value;
                idx += 1;
            }
            "rustflow_tenant_latency_us_sum" => sum += sample.value as u64,
            _ => {}
        }
    }
    if tenants == 0 {
        return None;
    }
    // The overflow bucket is empty whenever every observation fit a
    // finite bucket (true for any sane run: the top bound is ~134 s).
    counts.push(0);
    Histogram::from_parts(bounds, counts, sum)
}

/// Width (µs) of the log-linear bucket containing `v` — the agreement
/// tolerance between the bucketed server view and exact client samples.
fn bucket_width_at(bounds: &[u64], v: f64) -> f64 {
    let idx = bounds.partition_point(|&b| (b as f64) < v);
    match idx {
        0 => 1.0,
        i if i >= bounds.len() => (bounds[bounds.len() - 1] - bounds[bounds.len() - 2]) as f64,
        i => (bounds[i] - bounds[i - 1]) as f64,
    }
}

/// The observability loop-closer: runs a serving workload against an
/// executor with its introspection server up and a scraper hammering
/// `/metrics` concurrently, then checks the server's merged e2e
/// histogram percentiles against the exact client-side samples.
///
/// Unlike the throughput sweep this uses *synchronous* clients (no
/// pipeline window): the client stamp then brackets exactly the
/// submit→resolve interval the server decomposes, so the two views must
/// agree to within one log-linear bucket width. Each request carries a
/// ~300 µs *sleep* (not a spin — on a single-core runner a spinning
/// worker would sit on the CPU a freshly-resolved client needs to wake
/// on, poisoning the client-side stamp): execution dominates both views
/// identically and wakeup jitter stays well inside the ≤25%-wide bucket
/// at that scale.
fn server_agreement(flags: &Flags) -> Vec<String> {
    let per_client = flags.per_client.min(300);
    let ex = ExecutorBuilder::new().workers(flags.workers).build();
    let handle = ex
        .serve_introspection("127.0.0.1:0")
        .expect("bind introspection listener");
    let addr = handle.local_addr().expect("ephemeral introspection addr");

    // Scrape *during* the run: shard merges must be safe (and cheap)
    // while workers are recording into the same shards.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let _ = http_get(addr, "/metrics");
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let lat = {
        let handles: Vec<_> = (0..AGREE_CLIENTS)
            .map(|c| {
                let ex = Arc::clone(&ex);
                let tenant = ex.tenant_with(
                    &format!("agree-{c}"),
                    TenantQos {
                        weight: 1,
                        max_queued: 4,
                        ..TenantQos::default()
                    },
                );
                std::thread::spawn(move || {
                    let mut lat_us = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let tf = Taskflow::with_executor(ex.clone());
                        tf.emplace(|| std::thread::sleep(Duration::from_micros(300)));
                        let t0 = Instant::now();
                        let h = tf.run_on(&tenant).expect("executor is not shutting down");
                        h.get().expect("request must succeed");
                        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat_us
                })
            })
            .collect();
        let mut lat: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        lat
    };
    stop.store(true, Ordering::Release);
    scraper.join().expect("scraper thread panicked");

    // Latency records fold in *after* each run's promise resolves, so
    // poll the endpoint until every submission is visible server-side.
    let expected = (AGREE_CLIENTS * per_client) as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    let hist = loop {
        let merged = merged_e2e(&http_get(addr, "/metrics"));
        match merged {
            Some(h) if h.count() >= expected => break h,
            _ if Instant::now() > deadline => {
                return vec![format!(
                    "server-side e2e histogram never reached {expected} records (got {})",
                    merged.map_or(0, |h| h.count())
                )];
            }
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    };

    let mut failures = Vec::new();
    if hist.count() != expected {
        failures.push(format!(
            "server-side e2e histogram counted {} runs, clients resolved {expected}",
            hist.count()
        ));
    }
    for (q, name) in [(0.50, "p50"), (0.99, "p99")] {
        let client = rustflow::percentile(&lat, q);
        let server = hist.percentile(q);
        let tol = bucket_width_at(hist.bounds(), client.max(server)) + 1.0;
        println!(
            "   agreement {name}: client {client:>8.1} us  server {server:>8.1} us  (tolerance {tol:.1} us)"
        );
        if (client - server).abs() > tol {
            failures.push(format!(
                "server-side {name} ({server:.1} us) disagrees with client-measured {name} \
                 ({client:.1} us) beyond one bucket width ({tol:.1} us)"
            ));
        }
    }
    failures
}

fn main() {
    let flags = parse_flags();
    let client_counts = [1usize, 2, 4, 8, 16];
    let mut measured = Vec::new();
    for &clients in &client_counts {
        let (lockfree, mutexed) = measure_pair(clients, &flags);
        for m in [lockfree, mutexed] {
            println!(
                "{:>12}: {:>7} submissions in {:>8.1} ms  ({:>9.0}/s)  p50 {:>7.1} us  p99 {:>8.1} us  p999 {:>8.1} us",
                m.name, m.submissions, m.wall_ms, m.throughput_per_s, m.p50_us, m.p99_us, m.p999_us
            );
            measured.push(m);
        }
    }

    // --- Server-side histogram agreement. --------------------------------
    println!("server-histogram agreement ({AGREE_CLIENTS} clients, scraper attached):");
    let agreement_failures = server_agreement(&flags);
    if !flags.check {
        // Outside `--check` the disagreements are advisory, not fatal.
        for f in &agreement_failures {
            eprintln!("serving agreement WARN: {f}");
        }
    }

    // --- Report. ---------------------------------------------------------
    std::fs::create_dir_all(&flags.out).expect("cannot create output directory");
    let mut report = format!(
        "{{\n  \"schema_version\": 1,\n  \"workers\": {},\n  \"per_client\": {},\n  \"window\": {WINDOW},\n  \"configs\": [\n",
        flags.workers, flags.per_client
    );
    for (i, m) in measured.iter().enumerate() {
        report.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"mutexed\": {}, \"submissions\": {}, \"wall_ms\": {:.3}, \"throughput_per_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}{}\n",
            m.name,
            m.clients,
            m.mutexed,
            m.submissions,
            m.wall_ms,
            m.throughput_per_s,
            m.p50_us,
            m.p99_us,
            m.p999_us,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    report.push_str("  ]\n}\n");
    let path = flags.out.join("serving_report.json");
    std::fs::write(&path, &report).expect("cannot write serving_report.json");
    println!("  -> {}", path.display());

    let baseline_path = flags
        .baseline
        .clone()
        .unwrap_or_else(|| flags.out.join("serving_baseline.json"));

    if flags.write_baseline {
        let mut b = String::from(
            "{\n  \"schema_version\": 1,\n  \"tolerance_ratio\": 8.0,\n  \"configs\": [\n",
        );
        for (i, m) in measured.iter().enumerate() {
            b.push_str(&format!(
                "    {{\"name\": \"{}\", \"throughput_per_s\": {:.1}, \"p99_us\": {:.1}}}{}\n",
                m.name,
                m.throughput_per_s,
                m.p99_us,
                if i + 1 < measured.len() { "," } else { "" }
            ));
        }
        b.push_str("  ]\n}\n");
        std::fs::write(&baseline_path, b).expect("cannot write baseline");
        println!("  -> {}", baseline_path.display());
    }

    if flags.check {
        let mut failures = gate(&measured, &baseline_path);
        failures.extend(agreement_failures);
        if failures.is_empty() {
            println!("serving gate: OK ({} configs)", measured.len());
        } else {
            for f in &failures {
                eprintln!("serving gate FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// The gate: the lock-free injector holds its ground at every contended
/// client count and wins at least one outright, and no config regresses
/// past the committed baseline's tolerance band.
fn gate(measured: &[Measured], baseline_path: &std::path::Path) -> Vec<String> {
    let mut failures = Vec::new();

    // A/B: the whole point of the MPMC injector is multi-client
    // submission throughput. Two-part check shaped for noisy runners —
    // on a single-core container the two paths time-slice one CPU, and
    // at clients == workers the lock-free path can *genuinely* lose a
    // run there (a failed CAS retry burns the rest of a timeslice where
    // a mutex waiter yields immediately), while at high thread counts
    // the holder-preemption convoy dominates and lock-free reliably
    // wins. So: the lock-free path must win outright at at least one
    // contended (>= 4 clients) count, and at the *most* contended count
    // it must stay within 15% of the ablation (a real implementation
    // regression loses by far more than scheduling jitter).
    let mut contended = 0usize;
    let mut outright_wins = 0usize;
    let max_clients = measured.iter().map(|m| m.clients).max().unwrap_or(0);
    for m in measured.iter().filter(|m| !m.mutexed && m.clients >= 4) {
        let Some(ablation) = measured
            .iter()
            .find(|a| a.mutexed && a.clients == m.clients)
        else {
            continue;
        };
        contended += 1;
        if m.throughput_per_s > ablation.throughput_per_s {
            outright_wins += 1;
        }
        if m.clients == max_clients && m.throughput_per_s < 0.85 * ablation.throughput_per_s {
            failures.push(format!(
                "lock-free injector lost to the mutexed ablation by >15% at {} clients: {:.0}/s vs {:.0}/s",
                m.clients, m.throughput_per_s, ablation.throughput_per_s
            ));
        }
    }
    if contended > 0 && outright_wins == 0 {
        failures.push(format!(
            "lock-free injector beat the mutexed ablation at none of the {contended} contended client counts"
        ));
    }

    // Baseline tolerance band.
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!(
                "cannot read baseline {}: {e}",
                baseline_path.display()
            ));
            return failures;
        }
    };
    let base = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            failures.push(format!("baseline is not valid JSON: {e}"));
            return failures;
        }
    };
    let tol = base
        .get("tolerance_ratio")
        .and_then(json::Value::as_f64)
        .unwrap_or(8.0);
    let Some(configs) = base.get("configs").and_then(json::Value::as_arr) else {
        failures.push("baseline has no configs array".into());
        return failures;
    };
    for m in measured {
        let Some(b) = configs
            .iter()
            .find(|c| c.get("name").and_then(json::Value::as_str) == Some(m.name.as_str()))
        else {
            failures.push(format!("{}: missing from baseline", m.name));
            continue;
        };
        // One-sided: only *regressions* (slower throughput, higher p99)
        // can fail the gate — a faster machine must never trip it.
        let band = |what: &str, ratio: f64, now: f64, then: f64| -> Option<String> {
            if then <= 0.0 || now <= 0.0 {
                return None;
            }
            (ratio > tol).then(|| {
                format!(
                    "{}: {what} regressed: {now:.1} vs baseline {then:.1} (x{ratio:.2}, band x{tol})",
                    m.name
                )
            })
        };
        let get_f = |k: &str| b.get(k).and_then(json::Value::as_f64).unwrap_or(0.0);
        let base_tp = get_f("throughput_per_s");
        failures.extend(band(
            "throughput (/s)",
            base_tp / m.throughput_per_s.max(f64::MIN_POSITIVE),
            m.throughput_per_s,
            base_tp,
        ));
        let base_p99 = get_f("p99_us");
        failures.extend(band(
            "p99 latency (us)",
            m.p99_us / base_p99.max(f64::MIN_POSITIVE),
            m.p99_us,
            base_p99,
        ));
    }
    failures
}
