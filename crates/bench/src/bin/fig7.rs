//! Figure 7 — Performance comparisons on the two micro-benchmarks.
//!
//! * `--part size`: runtime vs problem size at a fixed thread count
//!   (paper: 8 CPUs; wavefront up to 262,144 tasks, graph traversal up to
//!   711,002 tasks), all three parallel models.
//! * `--part threads`: runtime vs thread count at the maximum problem
//!   size, rustflow vs the TBB-style flow graph (the paper skips OpenMP
//!   here as it is slower than both).
//!
//! The measurement includes library ramp-up (executor/pool creation),
//! graph construction, execution, and clean-up — matching §IV-A.

use rustflow::Executor;
use tf_baselines::Pool;
use tf_bench::harness::{median_ms, Cli, Report};
use tf_bench::impls::*;
use tf_workloads::randdag::RandDagSpec;

fn main() {
    let cli = Cli::parse();
    if cli.wants_part("size") {
        size_sweep(&cli);
    }
    if cli.wants_part("threads") {
        thread_sweep(&cli);
    }
}

/// Wavefront dims and traversal node counts for the sweep.
fn problem_sizes(full: bool) -> (Vec<usize>, Vec<usize>) {
    if full {
        // Paper scale: up to 512*512 = 262,144 and 711,002 tasks.
        (
            vec![128, 192, 256, 320, 384, 448, 512],
            vec![100_000, 200_000, 348_000, 500_000, 711_002],
        )
    } else {
        (
            vec![32, 48, 64, 96, 128],
            vec![10_000, 25_000, 50_000, 100_000],
        )
    }
}

fn size_sweep(cli: &Cli) {
    let threads = 8;
    let (dims, dag_sizes) = problem_sizes(cli.full);
    println!("Figure 7 (top): runtime vs problem size, {threads} threads");
    let mut report = Report::new(
        cli,
        "fig7_size",
        &[
            "benchmark",
            "tasks",
            "rustflow_ms",
            "tbb_style_ms",
            "openmp_style_ms",
            "levelized_ms",
        ],
    );
    report.print_header();

    for &dim in &dims {
        let iters = 40;
        let ex = Executor::new(threads);
        let rf = median_ms(cli.reps, || {
            wavefront_rustflow::run(dim, iters, &ex);
        });
        let pool = Pool::new(threads);
        let fg = median_ms(cli.reps, || {
            wavefront_flowgraph::run(dim, iters, &pool);
        });
        let omp = median_ms(cli.reps, || {
            wavefront_openmp::run(dim, iters, &pool);
        });
        let lv = median_ms(cli.reps, || {
            wavefront_levelized::run(dim, iters, &pool);
        });
        report.row(&[
            "wavefront".into(),
            (dim * dim).to_string(),
            format!("{rf:.2}"),
            format!("{fg:.2}"),
            format!("{omp:.2}"),
            format!("{lv:.2}"),
        ]);
    }
    for &nodes in &dag_sizes {
        let spec = RandDagSpec::new(nodes);
        let ex = Executor::new(threads);
        let rf = median_ms(cli.reps, || {
            traversal_rustflow::run(spec, &ex);
        });
        let pool = Pool::new(threads);
        let fg = median_ms(cli.reps, || {
            traversal_flowgraph::run(spec, &pool);
        });
        let omp = median_ms(cli.reps, || {
            traversal_openmp::run(spec, &pool);
        });
        let lv = median_ms(cli.reps, || {
            traversal_levelized::run(spec, &pool);
        });
        report.row(&[
            "traversal".into(),
            nodes.to_string(),
            format!("{rf:.2}"),
            format!("{fg:.2}"),
            format!("{omp:.2}"),
            format!("{lv:.2}"),
        ]);
    }
    report.save();
}

fn thread_sweep(cli: &Cli) {
    let threads = cli.thread_sweep(if cli.full {
        &[1, 2, 4, 8, 16, 32, 64]
    } else {
        &[1, 2, 4, 8]
    });
    let (dims, dag_sizes) = problem_sizes(cli.full);
    let dim = *dims.last().expect("nonempty");
    let nodes = *dag_sizes.last().expect("nonempty");
    println!(
        "Figure 7 (bottom): runtime vs threads (wavefront {} tasks, traversal {} tasks)",
        dim * dim,
        nodes
    );
    let mut report = Report::new(
        cli,
        "fig7_threads",
        &["benchmark", "threads", "rustflow_ms", "tbb_style_ms"],
    );
    report.print_header();
    for &t in &threads {
        let ex = Executor::new(t);
        let rf = median_ms(cli.reps, || {
            wavefront_rustflow::run(dim, 40, &ex);
        });
        let pool = Pool::new(t);
        let fg = median_ms(cli.reps, || {
            wavefront_flowgraph::run(dim, 40, &pool);
        });
        report.row(&[
            "wavefront".into(),
            t.to_string(),
            format!("{rf:.2}"),
            format!("{fg:.2}"),
        ]);
    }
    for &t in &threads {
        let spec = RandDagSpec::new(nodes);
        let ex = Executor::new(t);
        let rf = median_ms(cli.reps, || {
            traversal_rustflow::run(spec, &ex);
        });
        let pool = Pool::new(t);
        let fg = median_ms(cli.reps, || {
            traversal_flowgraph::run(spec, &pool);
        });
        report.row(&[
            "traversal".into(),
            t.to_string(),
            format!("{rf:.2}"),
            format!("{fg:.2}"),
        ]);
    }
    report.save();
}
