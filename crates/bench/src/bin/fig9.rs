//! Figure 9 — Runtime comparisons of incremental timing between
//! OpenTimer v1 (OpenMP-style levelized) and v2 (rustflow), 16 CPUs.
//!
//! Per iteration: one random design modifier (gate resize) followed by a
//! timing query that triggers an incremental update. tv80 runs 30
//! iterations, vga_lcd 100, as in the paper. `--full` uses the paper's
//! full gate counts; the default scales the circuits down (same shape).
//!
//! The v1 measurement includes re-levelizing the affected region (the
//! paper: "the time to reconstruct the data structure required by
//! OpenMP"); the v2 measurement includes building and launching the task
//! dependency graph.

use rustflow::Executor;
use tf_baselines::Pool;
use tf_bench::harness::{time_ms, Cli, Report};
use tf_timer::{CircuitSpec, DesignModifier, Engine, Timer};

fn main() {
    let cli = Cli::parse();
    let threads = 16;
    let scale = if cli.full { 1.0 } else { 0.05 };
    let specs = [
        (CircuitSpec::tv80().scaled(scale), 30usize),
        (CircuitSpec::vga_lcd().scaled(scale), 100usize),
    ];
    let pool = Pool::new(threads);
    let executor = Executor::new(threads);

    let mut report = Report::new(
        &cli,
        "fig9",
        &["circuit", "gates", "iteration", "tasks", "v1_ms", "v2_ms"],
    );
    println!("Figure 9: incremental timing, v1 (levelized) vs v2 (rustflow), {threads} threads");
    report.print_header();

    for (spec, iterations) in specs {
        let circuit = spec.generate();
        println!(
            "  {}: {} gates, {} nets",
            spec.name,
            circuit.num_gates(),
            circuit.num_nets()
        );
        // Two identical timers driven by identical modifier streams, so
        // both engines see the same incremental workload.
        let mut t_v1 = Timer::new(circuit.clone());
        let mut t_v2 = Timer::new(circuit);
        t_v1.full_update(&Engine::V1Levelized(&pool));
        t_v2.full_update(&Engine::V2Rustflow(&executor));
        let mut m_v1 = DesignModifier::new(t_v1.circuit(), 0xF19);
        let mut m_v2 = DesignModifier::new(t_v2.circuit(), 0xF19);

        let mut total_tasks = 0usize;
        let (mut sum_v1, mut sum_v2) = (0.0f64, 0.0f64);
        let mut ratios: Vec<f64> = Vec::with_capacity(iterations);
        for iter in 0..iterations {
            let seeds1 = m_v1.apply(&mut t_v1);
            let seeds2 = m_v2.apply(&mut t_v2);
            assert_eq!(seeds1, seeds2, "modifier streams diverged");
            let mut tasks = 0;
            let v1_ms = time_ms(|| {
                tasks = t_v1.incremental_update(&seeds1, &Engine::V1Levelized(&pool));
            });
            let v2_ms = time_ms(|| {
                t_v2.incremental_update(&seeds2, &Engine::V2Rustflow(&executor));
            });
            assert!(
                (t_v1.worst_slack() - t_v2.worst_slack()).abs() < 1e-6,
                "engines disagree on slack"
            );
            total_tasks += tasks;
            sum_v1 += v1_ms;
            sum_v2 += v2_ms;
            ratios.push(v1_ms / v2_ms.max(1e-9));
            report.row(&[
                spec.name.to_string(),
                spec.gates.to_string(),
                iter.to_string(),
                tasks.to_string(),
                format!("{v1_ms:.3}"),
                format!("{v2_ms:.3}"),
            ]);
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {}: total incremental tasks {} | average per-iteration \
             speed-up v2/v1 {:.2}x (paper's metric), max {:.2}x, \
             total-time ratio {:.2}x",
            spec.name,
            total_tasks,
            mean_ratio,
            max_ratio,
            sum_v1 / sum_v2.max(1e-9)
        );
    }
    report.save();
    println!(
        "\nShape check: v2 consistently at or below v1 per iteration; \
         fluctuation follows the affected-region size (local vs global \
         modifiers), as in the paper."
    );
}
