//! Table I — Software Costs Comparison on Micro-benchmarks.
//!
//! Runs the SLOCCount/Lizard-equivalent analyzer (`tf-metrics`) over our
//! four implementations of each micro-benchmark and prints our numbers
//! next to the paper's. The paper's expectation: Cpp-Taskflow lowest
//! LOC/CC among the parallel models, sequential lowest overall, the
//! OpenMP-style model by far the worst on graph traversal.

use tf_bench::harness::{Cli, Report};
use tf_bench::impls::source_path;
use tf_metrics::SoftwareCost;

fn main() {
    let cli = Cli::parse();
    println!("Table I: software costs on micro-benchmarks (ours vs paper)");
    let mut report = Report::new(
        &cli,
        "table1",
        &[
            "benchmark",
            "model",
            "loc",
            "cc_total",
            "functions",
            "paper_loc",
            "paper_cc",
        ],
    );
    report.print_header();

    let rows: [(&str, &str, &str, u32, u32); 10] = [
        ("wavefront", "rustflow", "wavefront_rustflow.rs", 30, 7),
        ("wavefront", "openmp-style", "wavefront_openmp.rs", 64, 12),
        ("wavefront", "tbb-style", "wavefront_flowgraph.rs", 38, 8),
        ("wavefront", "sequential", "wavefront_seq.rs", 14, 3),
        ("wavefront", "levelized*", "wavefront_levelized.rs", 0, 0),
        ("traversal", "rustflow", "traversal_rustflow.rs", 40, 6),
        ("traversal", "openmp-style", "traversal_openmp.rs", 213, 28),
        ("traversal", "tbb-style", "traversal_flowgraph.rs", 59, 8),
        ("traversal", "sequential", "traversal_seq.rs", 14, 3),
        ("traversal", "levelized*", "traversal_levelized.rs", 0, 0),
    ];

    for (benchmark, model, file, paper_loc, paper_cc) in rows {
        let cost = SoftwareCost::measure_files(model, [source_path(file)]);
        report.row(&[
            benchmark.to_string(),
            model.to_string(),
            cost.sloc.to_string(),
            cost.cc_total().to_string(),
            cost.complexity.num_functions().to_string(),
            paper_loc.to_string(),
            paper_cc.to_string(),
        ]);
    }
    report.save();
    println!(
        "\nShape check: within each benchmark, sequential < rustflow < \
         tbb-style < openmp-style on LOC, as in the paper. Rows marked \
         levelized* are our extra OpenTimer-v1-style baseline (no paper \
         counterpart in Table I; paper columns show 0)."
    );
}
