//! Figure 12 — DNN training performance comparisons.
//!
//! * `--part epochs`: training runtime vs epoch count for the 3-layer and
//!   5-layer architectures at a fixed thread count (paper: 16 CPUs),
//!   rustflow vs TBB-style flow graph vs OpenMP-style phased.
//! * `--part threads`: training runtime vs thread count at a fixed epoch
//!   count (paper: 500 epochs; scaled down by default).
//!
//! All models train on identical data with identical shuffle schedules
//! and produce bitwise-identical weights (asserted in the test suite), so
//! the comparison is purely about scheduling.

use rustflow::Executor;
use std::sync::Arc;
use tf_baselines::Pool;
use tf_bench::harness::{time_ms, Cli, Report};
use tf_bench::impls::{dnn_flowgraph, dnn_openmp, dnn_rustflow};
use tf_dnn::net::{arch_3layer, arch_5layer};
use tf_dnn::pipeline::TrainSpec;
use tf_dnn::synthetic_mnist;

fn main() {
    let cli = Cli::parse();
    if cli.wants_part("epochs") {
        epoch_sweep(&cli);
    }
    if cli.wants_part("threads") {
        thread_sweep(&cli);
    }
}

fn dataset_size(full: bool) -> usize {
    if full {
        60_000
    } else {
        3_000
    }
}

fn spec_for(cli: &Cli, epochs: usize, threads: usize) -> TrainSpec {
    TrainSpec {
        epochs,
        batch: 100,
        lr: 0.001,
        // "twice the number of threads", capped to bound memory.
        storages: (2 * threads).min(if cli.full { 8 } else { 4 }),
        seed: 0xD11A,
    }
}

fn epoch_sweep(cli: &Cli) {
    let threads = 16;
    let data = Arc::new(synthetic_mnist(dataset_size(cli.full), 0xDA7A));
    let epoch_counts: Vec<usize> = if cli.full {
        vec![20, 40, 60, 80, 100]
    } else {
        vec![2, 4, 6, 8]
    };
    println!("Figure 12 (top): training runtime vs epochs, {threads} threads");
    let mut report = Report::new(
        cli,
        "fig12_epochs",
        &[
            "arch",
            "epochs",
            "tasks",
            "rustflow_s",
            "tbb_style_s",
            "openmp_style_s",
        ],
    );
    report.print_header();
    for (arch_name, arch) in [("3-layer", arch_3layer()), ("5-layer", arch_5layer())] {
        let layers = arch.len() - 1;
        for &epochs in &epoch_counts {
            let spec = spec_for(cli, epochs, threads);
            let batches = data.len() / spec.batch;
            let tasks = epochs * (1 + batches * (1 + 2 * layers));
            let ex = Executor::new(threads);
            let rf = time_ms(|| {
                dnn_rustflow::train(Arc::clone(&data), &arch, spec, 7, &ex);
            });
            let pool = Pool::new(threads);
            let fg = time_ms(|| {
                dnn_flowgraph::train(Arc::clone(&data), &arch, spec, 7, &pool);
            });
            let lv = time_ms(|| {
                dnn_openmp::train(Arc::clone(&data), &arch, spec, 7, &pool);
            });
            report.row(&[
                arch_name.to_string(),
                epochs.to_string(),
                tasks.to_string(),
                format!("{:.2}", rf / 1e3),
                format!("{:.2}", fg / 1e3),
                format!("{:.2}", lv / 1e3),
            ]);
        }
    }
    report.save();
}

fn thread_sweep(cli: &Cli) {
    let data = Arc::new(synthetic_mnist(dataset_size(cli.full), 0xDA7A));
    let epochs = if cli.full { 500 } else { 5 };
    let threads = cli.thread_sweep(if cli.full {
        &[1, 2, 4, 8, 16, 32, 64]
    } else {
        &[1, 2, 4, 8]
    });
    println!("Figure 12 (bottom): training runtime vs threads, {epochs} epochs");
    let mut report = Report::new(
        cli,
        "fig12_threads",
        &[
            "arch",
            "threads",
            "rustflow_s",
            "tbb_style_s",
            "openmp_style_s",
        ],
    );
    report.print_header();
    for (arch_name, arch) in [("3-layer", arch_3layer()), ("5-layer", arch_5layer())] {
        for &t in &threads {
            let spec = spec_for(cli, epochs, t);
            let ex = Executor::new(t);
            let rf = time_ms(|| {
                dnn_rustflow::train(Arc::clone(&data), &arch, spec, 7, &ex);
            });
            let pool = Pool::new(t);
            let fg = time_ms(|| {
                dnn_flowgraph::train(Arc::clone(&data), &arch, spec, 7, &pool);
            });
            let lv = time_ms(|| {
                dnn_openmp::train(Arc::clone(&data), &arch, spec, 7, &pool);
            });
            report.row(&[
                arch_name.to_string(),
                t.to_string(),
                format!("{:.2}", rf / 1e3),
                format!("{:.2}", fg / 1e3),
                format!("{:.2}", lv / 1e3),
            ]);
        }
    }
    report.save();
    println!(
        "\nShape check: rustflow fastest at every configuration; saturation \
         around 8-16 threads (bounded by the training graph's concurrency), \
         as in the paper."
    );
}
