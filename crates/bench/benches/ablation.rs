//! Ablation benches for the executor heuristics of Algorithm 1 (§III-E):
//!
//! * the **per-worker cache slot** ("per-thread local cache enables
//!   speculative execution and ensures no context switch for tasks with
//!   linear task dependency") — toggled via
//!   [`rustflow::ExecutorBuilder::cache_slot`];
//! * the **probabilistic load-balancing wake-up** (Algorithm 1 lines
//!   26–28) — tuned via [`rustflow::ExecutorBuilder::wake_ratio`].
//!
//! The chain workload isolates the cache slot (a pure linear dependency);
//! the wavefront workload exercises both heuristics together.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rustflow::ExecutorBuilder;
use tf_workloads::run::run_rustflow;
use tf_workloads::wavefront::{self, WavefrontSpec};

fn chain_dag(n: usize) -> tf_baselines::Dag {
    let mut dag = tf_baselines::Dag::with_capacity(n);
    let mut prev = None;
    for _ in 0..n {
        let v = dag.add(|| {});
        if let Some(p) = prev {
            dag.edge(p, v);
        }
        prev = Some(v);
    }
    dag
}

fn bench_cache_slot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/cache_slot");
    let n = 20_000;
    group.throughput(Throughput::Elements(n as u64));
    let dag = chain_dag(n);
    for enabled in [true, false] {
        let ex = ExecutorBuilder::new()
            .workers(4)
            .cache_slot(enabled)
            .build();
        group.bench_function(BenchmarkId::new("chain", enabled), |b| {
            b.iter(|| run_rustflow(&dag, &ex))
        });
    }
    let (wf, _sink) = wavefront::build(WavefrontSpec::new(64));
    group.throughput(Throughput::Elements(wf.len() as u64));
    for enabled in [true, false] {
        let ex = ExecutorBuilder::new()
            .workers(4)
            .cache_slot(enabled)
            .build();
        group.bench_function(BenchmarkId::new("wavefront", enabled), |b| {
            b.iter(|| run_rustflow(&wf, &ex))
        });
    }
    group.finish();
}

fn bench_wake_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/wake_ratio");
    let (wf, _sink) = wavefront::build(WavefrontSpec::new(64));
    group.throughput(Throughput::Elements(wf.len() as u64));
    for ratio in [0u64, 16, 64, 256] {
        let ex = ExecutorBuilder::new().workers(4).wake_ratio(ratio).build();
        group.bench_function(BenchmarkId::new("wavefront", ratio), |b| {
            b.iter(|| run_rustflow(&wf, &ex))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_slot, bench_wake_ratio
}
criterion_main!(benches);
