//! Criterion micro-benches: pure per-task scheduling overhead of each
//! execution model on three canonical graph shapes (linear chain, wide
//! fan-out, binary tree). These complement Figure 7 with
//! statistically-sound per-task costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rustflow::{Executor, Taskflow};
use std::sync::Arc;
use tf_baselines::{FlowGraphBuilder, Pool, TaskDepRegion};
use tf_workloads::shapes::{chain as chain_dag, fan as fan_dag, tree as tree_dag};

fn bench_shapes(c: &mut Criterion) {
    let threads = 4;
    let n = 10_000;
    for (shape, dag) in [
        ("chain", chain_dag(n)),
        ("fan", fan_dag(n)),
        ("tree", tree_dag(n)),
    ] {
        let mut group = c.benchmark_group(format!("tasking/{shape}"));
        group.throughput(Throughput::Elements(dag.len() as u64));

        let ex = Executor::new(threads);
        group.bench_function(BenchmarkId::new("rustflow", dag.len()), |b| {
            b.iter(|| tf_workloads::run::run_rustflow(&dag, &ex))
        });
        let pool = Pool::new(threads);
        group.bench_function(BenchmarkId::new("flowgraph", dag.len()), |b| {
            b.iter(|| tf_workloads::run::run_flowgraph(&dag, &pool))
        });
        group.bench_function(BenchmarkId::new("levelized", dag.len()), |b| {
            b.iter(|| tf_workloads::run::run_levelized(&dag, &pool))
        });
        // Precompute depend(in:) lists once; the bench measures the
        // runtime's clause resolution, not this setup.
        let mut pred_lists: Vec<Vec<u64>> = vec![Vec::new(); dag.len()];
        for u in 0..dag.len() {
            for &v in dag.successors_of(u) {
                pred_lists[v as usize].push(u as u64);
            }
        }
        group.bench_function(BenchmarkId::new("openmp_taskdep", dag.len()), |b| {
            b.iter(|| {
                let region = TaskDepRegion::new(&pool);
                for (v, preds) in pred_lists.iter().enumerate() {
                    let payload = dag.payload_of(v);
                    // depend(in: predecessors) depend(out: self)
                    region.task(preds, &[v as u64], move || payload());
                }
                region.wait_all();
            })
        });
        group.bench_function(BenchmarkId::new("sequential", dag.len()), |b| {
            b.iter(|| dag.run_sequential())
        });
        group.finish();
    }
}

fn bench_graph_construction(c: &mut Criterion) {
    // Graph-description cost alone: emplace + precede for 10k tasks.
    let mut group = c.benchmark_group("tasking/construction");
    let n = 10_000;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("rustflow_emplace_precede", |b| {
        b.iter(|| {
            let tf = Taskflow::new();
            let tasks: Vec<_> = (0..n).map(|_| tf.emplace(|| {})).collect();
            for w in tasks.windows(2) {
                w[0].precede(w[1]);
            }
            tf.num_nodes()
            // Taskflow dropped without dispatch: graph discarded.
        })
    });
    group.bench_function("flowgraph_build", |b| {
        b.iter(|| {
            let mut builder = FlowGraphBuilder::new();
            let nodes: Vec<_> = (0..n).map(|_| builder.continue_node(|_| {})).collect();
            for w in nodes.windows(2) {
                builder.make_edge(w[0], w[1]);
            }
            builder.build().len()
        })
    });
    group.finish();
}

fn bench_subflow(c: &mut Criterion) {
    // Dynamic tasking: each of 1000 parent tasks spawns a 3-task subflow.
    let mut group = c.benchmark_group("tasking/subflow");
    let parents = 1_000;
    group.throughput(Throughput::Elements(parents as u64 * 4));
    let ex = Executor::new(4);
    group.bench_function("spawn_join", |b| {
        b.iter(|| {
            let tf = Taskflow::with_executor(Arc::clone(&ex));
            for _ in 0..parents {
                tf.emplace_subflow(|sf| {
                    let a = sf.emplace(|| {});
                    let b2 = sf.emplace(|| {});
                    let c2 = sf.emplace(|| {});
                    a.precede([b2, c2]);
                });
            }
            tf.wait_for_all();
        })
    });
    group.bench_function("spawn_detach", |b| {
        b.iter(|| {
            let tf = Taskflow::with_executor(Arc::clone(&ex));
            for _ in 0..parents {
                tf.emplace_subflow(|sf| {
                    let a = sf.emplace(|| {});
                    let b2 = sf.emplace(|| {});
                    a.precede(b2);
                    sf.detach();
                });
            }
            tf.wait_for_all();
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shapes, bench_graph_construction, bench_subflow
}
criterion_main!(benches);
