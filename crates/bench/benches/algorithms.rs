//! Criterion benches of the built-in algorithm collection (§III-F):
//! `parallel_for`, `reduce`, `transform` against their sequential
//! equivalents.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rustflow::algorithm::{parallel_for, reduce, transform};
use rustflow::{Executor, SharedVec, Taskflow};
use std::sync::Arc;

fn bench_parallel_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/parallel_for");
    let n = 100_000usize;
    group.throughput(Throughput::Elements(n as u64));
    let ex = Executor::new(4);
    group.bench_function("rustflow", |b| {
        b.iter(|| {
            let tf = Taskflow::with_executor(Arc::clone(&ex));
            parallel_for(&tf, 0..n, 1024, |i| {
                std::hint::black_box(i * 3);
            });
            tf.wait_for_all();
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for i in 0..n {
                std::hint::black_box(i * 3);
            }
        })
    });
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/reduce");
    let n = 100_000usize;
    group.throughput(Throughput::Elements(n as u64));
    let ex = Executor::new(4);
    group.bench_function("rustflow", |b| {
        b.iter(|| {
            let tf = Taskflow::with_executor(Arc::clone(&ex));
            let (_s, _t, r) = reduce(&tf, 0..n, 1024, 0usize, |a, i| a + i, |a, b| a + b);
            tf.wait_for_all();
            r.take().expect("reduced")
        })
    });
    group.bench_function("sequential", |b| b.iter(|| (0..n).sum::<usize>()));
    group.finish();
}

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/transform");
    let n = 100_000usize;
    group.throughput(Throughput::Elements(n as u64));
    let ex = Executor::new(4);
    let src = SharedVec::from_fn(n, |i| i as f64);
    let dst = SharedVec::new(vec![0f64; n]);
    group.bench_function("rustflow", |b| {
        b.iter(|| {
            let tf = Taskflow::with_executor(Arc::clone(&ex));
            transform(&tf, &src, &dst, 1024, |&x| x.sqrt() + 1.0);
            tf.wait_for_all();
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let v: Vec<f64> = (0..n).map(|i| (i as f64).sqrt() + 1.0).collect();
            std::hint::black_box(v.len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_for, bench_reduce, bench_transform
}
criterion_main!(benches);
