//! Strict validation of the executor's Prometheus histogram exposition
//! with the harness's own [`tf_bench::prom`] parser: the per-tenant
//! latency family must parse as a well-formed histogram with cumulative
//! buckets, a `+Inf` bucket equal to `_count`, and label escaping that
//! round-trips hostile tenant names.

use rustflow::{Executor, IntrospectConfig, Taskflow};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tf_bench::prom;

/// A tenant name exercising every escape the exporter applies: a quote,
/// a backslash, and a newline.
const NASTY: &str = "q\"uote\\slash\nline";

const RUNS: usize = 12;
const PHASES: [&str; 5] = ["admission", "queue", "dispatch", "exec", "e2e"];

#[test]
fn tenant_latency_family_survives_the_strict_parser() {
    let ex = Executor::new(2);
    let handle = ex
        .start_introspection(IntrospectConfig::default())
        .expect("introspection starts");
    let tenant = ex.tenant(NASTY);
    for _ in 0..RUNS {
        let tf = Taskflow::with_executor(Arc::clone(&ex));
        tf.emplace(|| {});
        tf.run_on(&tenant)
            .expect("admitted")
            .get()
            .expect("run succeeds");
    }
    // Latency shards fold in just after each promise resolves; the
    // completion counter bumps after the fold.
    let deadline = Instant::now() + Duration::from_secs(10);
    while tenant.stats().completed < RUNS as u64 {
        assert!(Instant::now() < deadline, "records never folded in");
        std::thread::yield_now();
    }

    let exposition = prom::parse(&handle.metrics_text()).expect("strict parse of /metrics");
    let family = exposition
        .family("rustflow_tenant_latency_us")
        .expect("latency family present");
    assert_eq!(family.kind, "histogram");

    for phase in PHASES {
        let buckets: Vec<&prom::Sample> = family
            .samples
            .iter()
            .filter(|s| {
                s.name == "rustflow_tenant_latency_us_bucket"
                    && s.label("phase") == Some(phase)
                    && s.label("tenant") == Some(NASTY)
            })
            .collect();
        assert!(
            !buckets.is_empty(),
            "phase {phase} has bucket samples for the escaped tenant"
        );
        // Cumulative monotonicity in exposition (= `le`) order.
        for w in buckets.windows(2) {
            assert!(
                w[1].value >= w[0].value,
                "phase {phase}: non-monotonic buckets {} -> {}",
                w[0].value,
                w[1].value
            );
        }
        // `le` bounds strictly increase, with `+Inf` last.
        let les: Vec<&str> = buckets.iter().map(|s| s.label("le").unwrap()).collect();
        assert_eq!(*les.last().unwrap(), "+Inf", "phase {phase} ends at +Inf");
        let finite: Vec<u64> = les[..les.len() - 1]
            .iter()
            .map(|le| le.parse().expect("finite le is an integer"))
            .collect();
        assert!(
            finite.windows(2).all(|w| w[0] < w[1]),
            "phase {phase}: le bounds not strictly increasing"
        );
        // The +Inf bucket equals the series' `_count`, which equals the
        // number of runs pushed through the front door.
        let count = family
            .samples
            .iter()
            .find(|s| {
                s.name == "rustflow_tenant_latency_us_count"
                    && s.label("phase") == Some(phase)
                    && s.label("tenant") == Some(NASTY)
            })
            .expect("series has a _count")
            .value;
        assert_eq!(buckets.last().unwrap().value, count, "phase {phase}");
        assert_eq!(count, RUNS as f64, "phase {phase} recorded every run");
        // And a `_sum` exists for the series (the parser already enforced
        // that the suffix is legal under a histogram TYPE).
        assert!(
            family.samples.iter().any(|s| {
                s.name == "rustflow_tenant_latency_us_sum"
                    && s.label("phase") == Some(phase)
                    && s.label("tenant") == Some(NASTY)
            }),
            "phase {phase} has a _sum"
        );
    }
    drop(handle);
}
