//! Model-checked protocol tests for rustflow's lock-free core.
//!
//! Each test explores the schedule space of a small instance of one
//! protocol (the Chase–Lev deque, the Vyukov event ring, the notifier's
//! Dekker handshake) under the rustflow-check engine and asserts a
//! protocol invariant in every interleaving.
//!
//! Every model doubles as a *mutation test*: building the workspace with
//! `RUSTFLAGS='--cfg rustflow_weaken="<point>"'` downgrades exactly one
//! memory ordering in the core (see the `const` items next to each
//! protocol), and the matching test here is `should_panic` under that cfg
//! — the checker must find a concrete failing interleaving and print it as
//! a replayable schedule. A model that cannot detect its own weakening
//! would be vacuous.

use rustflow::check_internals::{EventRing, Injector, Notifier, RearmHarness};
use rustflow::wsq::{deque_with_capacity, Steal};
use rustflow::{SchedEvent, SchedEventKind, TaskLabel};
use rustflow_check::atomic::{fence, AtomicBool};
use rustflow_check::{thread, Checker};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The last element of a Chase–Lev deque is raced between the owner's
/// `pop` and a thief's `steal`: the SeqCst fences on both sides form a
/// Dekker pairing, and the `t == b` case is arbitrated by a CAS on `top`.
///
/// Weakened by `rustflow_weaken = "wsq_pop_fence"` (pop's fence drops to
/// AcqRel — every happens-before edge survives, only the SC total order
/// is lost): after a thief drains both items, the owner can still read a
/// stale `top`, conclude two items remain, and take the bottom slot
/// *without* the CAS — the invariant "every item taken exactly once"
/// breaks with a duplicate.
#[test]
#[cfg_attr(
    rustflow_weaken = "wsq_pop_fence",
    should_panic(expected = "failing interleaving")
)]
fn wsq_owner_pop_vs_steal_last_element() {
    Checker::new()
        .preemption_bound(Some(2))
        .max_schedules(60_000)
        .check("wsq_owner_pop_vs_steal_last_element", || {
            let (owner, stealer) = deque_with_capacity(2);
            owner.push(1);
            owner.push(2);
            let thief = thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match stealer.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                }
                got
            });
            let mut taken = Vec::new();
            taken.extend(owner.pop());
            taken.extend(thief.join().unwrap());
            while let Some(v) = owner.pop() {
                taken.push(v);
            }
            taken.sort_unstable();
            assert_eq!(taken, vec![1, 2], "each item taken exactly once");
        });
}

/// Growing the deque copies the live region into a fresh ring and
/// publishes the new buffer pointer with a Release store, which a
/// concurrent thief acquires before reading slots from it.
///
/// Weakened by `rustflow_weaken = "wsq_grow_swap"` (the publish drops to
/// Relaxed): a thief can observe the new buffer pointer before the copied
/// slot values, steal an uninitialized `0`, and advance `top` past the
/// real item — conjuring a value that was never pushed and losing one
/// that was.
#[test]
#[cfg_attr(
    rustflow_weaken = "wsq_grow_swap",
    should_panic(expected = "failing interleaving")
)]
fn wsq_steal_during_grow() {
    Checker::new()
        .preemption_bound(Some(2))
        .max_schedules(60_000)
        .check("wsq_steal_during_grow", || {
            let (owner, stealer) = deque_with_capacity(2);
            owner.push(1);
            owner.push(2);
            let thief = thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match stealer.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                }
                got
            });
            // Third push exceeds capacity 2: grow() copies [top, bottom)
            // into a ring of 4 and swaps the buffer pointer while the
            // thief may be mid-steal.
            owner.push(3);
            let mut taken = thief.join().unwrap();
            while let Some(v) = owner.pop() {
                taken.push(v);
            }
            taken.sort_unstable();
            assert_eq!(taken, vec![1, 2, 3], "grow must not lose or invent items");
        });
}

fn ev(ts: u64) -> SchedEvent {
    SchedEvent {
        worker: 0,
        ts_us: ts,
        label: TaskLabel::new("e"),
        kind: SchedEventKind::TaskBegin {
            span: Default::default(),
        },
    }
}

/// The Vyukov ring hands a slot's payload from producer to consumer via
/// the slot's sequence number: the producer's Release store of
/// `seq = pos + 1` is what makes the plain payload write visible.
///
/// Weakened by `rustflow_weaken = "ring_publish"` (the publish drops to
/// Relaxed): the consumer can observe the new sequence number without the
/// payload write ordered before its read — a data race on the slot's
/// `CheckedCell`, which the engine reports directly.
#[test]
#[cfg_attr(
    rustflow_weaken = "ring_publish",
    should_panic(expected = "failing interleaving")
)]
fn ring_wraparound_under_contention() {
    Checker::new()
        .preemption_bound(Some(2))
        .max_schedules(60_000)
        .check("ring_wraparound_under_contention", || {
            let ring = Arc::new(EventRing::new(2));
            let r = Arc::clone(&ring);
            let producer = thread::spawn(move || {
                let mut dropped = 0usize;
                // Three pushes through a 2-slot ring: the third reuses a
                // slot (wrap-around) iff the consumer freed it in time.
                for ts in 1..=3u64 {
                    if !r.push(ev(ts)) {
                        dropped += 1;
                    }
                }
                dropped
            });
            let mut seen = Vec::new();
            for _ in 0..3 {
                if let Some(e) = ring.pop() {
                    seen.push(e.ts_us);
                }
            }
            let dropped = producer.join().unwrap();
            while let Some(e) = ring.pop() {
                seen.push(e.ts_us);
            }
            // Single producer: FIFO order, no duplication, and full
            // accounting (every event delivered or counted as dropped).
            assert!(
                seen.windows(2).all(|w| w[0] < w[1]),
                "FIFO violated: {seen:?}"
            );
            assert_eq!(seen.len() + dropped, 3, "event lost: {seen:?}");
        });
}

/// The notifier's sleep/wake handshake is a two-party Dekker protocol:
/// the idler increments `num_idlers` (SeqCst) *then* re-scans for work;
/// the submitter publishes work, issues a SeqCst fence, *then* reads
/// `num_idlers`. The SC total order guarantees one side sees the other.
///
/// Weakened by `rustflow_weaken = "notifier_dekker"` (both sides drop to
/// Relaxed): the idler can miss the work *and* the submitter can miss the
/// idler — a lost wakeup. The parked worker never wakes, which the engine
/// reports as a deadlock.
#[test]
#[cfg_attr(
    rustflow_weaken = "notifier_dekker",
    should_panic(expected = "failing interleaving")
)]
fn notifier_no_lost_wakeup() {
    Checker::new()
        .preemption_bound(Some(2))
        .max_schedules(60_000)
        .check("notifier_no_lost_wakeup", || {
            let notifier = Arc::new(Notifier::new(1));
            let work = Arc::new(AtomicBool::new(false));
            let stop = Arc::new(AtomicBool::new(false));
            let (n, w, s) = (Arc::clone(&notifier), Arc::clone(&work), Arc::clone(&stop));
            let idler = thread::spawn(move || {
                // Mirrors the worker loop: park unless the re-scan (run
                // after the idler is counted) already sees the work.
                n.wait(0, || !w.load(Ordering::Relaxed), &s)
            });
            // Mirrors run_topology/schedule: publish work, then the
            // Dekker fence, then wake. In every interleaving either the
            // wake lands or the idler refused to sleep — the test fails
            // only if the idler parks forever (deadlock).
            work.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            notifier.wake_one();
            let _ = idler.join().unwrap();
        });
}

/// The MPMC injector hands a task index from a submitting client to a
/// consuming worker through a Vyukov slot: the producer wins the slot
/// with a CAS on `head`, writes the payload, and publishes it by storing
/// `seq = pos + 1` with Release ([`INJECTOR_PUBLISH`] in
/// `crates/core/src/injector.rs`), which the consumer's Acquire `seq`
/// load pairs with before its plain payload read.
///
/// Weakened by `rustflow_weaken = "injector_publish"` (the publish drops
/// to Relaxed): the consumer can observe the occupied sequence number
/// without the payload write ordered before its read — with two clients
/// racing for slots, a worker can pop a stale index (a task that was
/// never submitted) while the real one is lost. The engine reports the
/// slot data race directly.
#[test]
#[cfg_attr(
    rustflow_weaken = "injector_publish",
    should_panic(expected = "failing interleaving")
)]
fn injector_two_producers_one_consumer() {
    // The sound run peaks at 29 steps/exec; the tight step budget only
    // bites under the weakening, where stale slot-sequence reads let a
    // losing producer spin unboundedly and would otherwise drown the
    // DFS in abandoned retry chains before it reaches the racy read.
    let stats = Checker::new()
        .preemption_bound(Some(2))
        .max_steps(120)
        .max_schedules(60_000)
        .check("injector_two_producers_one_consumer", || {
            let inj = Arc::new(Injector::new(2, false));
            let producers: Vec<_> = [1usize, 2]
                .into_iter()
                .map(|v| {
                    let inj = Arc::clone(&inj);
                    thread::spawn(move || inj.push(v))
                })
                .collect();
            // The consumer races the producers: pop what is visible now,
            // then join and drain the rest — conservation must hold in
            // every interleaving of the two slot claims and publishes.
            let mut got = Vec::new();
            got.extend(inj.pop());
            for p in producers {
                p.join().unwrap();
            }
            while let Some(v) = inj.pop() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![1, 2], "each submission consumed exactly once");
            assert!(inj.is_empty());
        });
    assert!(stats.dfs_complete, "schedule space must be fully explored");
}

/// Slot recycling plus the overflow spill: three pushes through a 2-slot
/// ring force a wrap-around (the consumer's Release recycle store must
/// be visible to the producer's Acquire free-check) and — when the
/// consumer lags — a spill into the mutexed side queue, whose SeqCst
/// counter keeps `is_empty` honest for the park-path Dekker handshake.
///
/// Weakened by `rustflow_weaken = "injector_publish"`: same Relaxed
/// publish as above; the single-consumer wrap-around alone is enough for
/// the engine to observe the unsynchronized payload read and report the
/// race.
#[test]
#[cfg_attr(
    rustflow_weaken = "injector_publish",
    should_panic(expected = "failing interleaving")
)]
fn injector_wraparound_and_spill() {
    let stats = Checker::new()
        .preemption_bound(Some(2))
        .max_schedules(60_000)
        .check("injector_wraparound_and_spill", || {
            let inj = Arc::new(Injector::new(2, false));
            let i = Arc::clone(&inj);
            let producer = thread::spawn(move || i.push_batch([1, 2, 3]));
            let mut got = Vec::new();
            for _ in 0..3 {
                got.extend(inj.pop());
            }
            producer.join().unwrap();
            while let Some(v) = inj.pop() {
                got.push(v);
            }
            got.sort_unstable();
            // Push never fails: whatever overflowed the ring spilled into
            // the side queue, so all three indices come back exactly once.
            assert_eq!(got, vec![1, 2, 3], "spill must not lose or invent tasks");
        });
    assert!(stats.dfs_complete, "schedule space must be fully explored");
}

/// The finalize → re-arm → re-dispatch handoff of a reusable topology:
/// the worker whose final `alive` decrement ends iteration *k* takes the
/// driver role, steps the production `Topology::advance` state machine,
/// and `begin_iteration` re-arms every node (join counters from
/// in-degrees, `alive` from the node count) strictly *before* publishing
/// iteration *k+1*'s sources. The harness ([`RearmHarness`]) swaps the
/// work-stealing queues for one blocking queue so any token lost by a
/// mis-ordered re-arm surfaces as a deadlock the engine reports.
///
/// Weakened by `rustflow_weaken = "rearm_publish"` (sources published
/// *before* the re-arm loop): a thief can pop a source of iteration 2 and
/// count down a join counter and an `alive` count still holding
/// iteration 1's drained values — the fan-in successor is never
/// re-published, the batch never completes, and a worker blocks forever.
#[test]
#[cfg_attr(
    rustflow_weaken = "rearm_publish",
    should_panic(expected = "failing interleaving")
)]
fn rearm_handoff_fan_in() {
    let stats = Checker::new()
        .preemption_bound(Some(2))
        .max_schedules(60_000)
        .check("rearm_handoff_fan_in", || {
            // Two iterations of A → C ← B: 3 tokens per iteration, split
            // 3/3 across two workers so both live through the handoff.
            let harness = RearmHarness::fan_in(2);
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let h = Arc::clone(&harness);
                    thread::spawn(move || {
                        for _ in 0..3 {
                            let token = h.pop();
                            h.execute(token);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(
                harness.executions(),
                vec![2, 2, 2],
                "every node runs exactly once per iteration"
            );
            match harness.result() {
                Some(Ok(())) => {}
                other => panic!("batch must resolve Ok after both iterations: {other:?}"),
            }
        });
    assert!(stats.dfs_complete, "schedule space must be fully explored");
}

/// The cooperative-cancellation handshake: `Topology::cancel` records the
/// `Cancelled` error **before** publishing the cancel flag (Release), and
/// a worker that observes the flag (Acquire) skips its node but still runs
/// the completion bookkeeping. The happens-before chain — record ≺ flag
/// publish ≺ skip ≺ final `alive` decrement ≺ the driver's error take —
/// guarantees that any run in which at least one node was skipped resolves
/// `Err(Cancelled)`, never `Ok(())`.
///
/// Weakened by `rustflow_weaken = "cancel_publish"` (flag published
/// *before* the error is recorded): a worker can observe the flag, skip
/// the fan-in successor, and complete the iteration while the error is
/// still unrecorded — the driver finds no error and resolves the batch
/// `Ok(())` even though a node never ran. The invariant below fails and
/// the checker prints the interleaving.
#[test]
#[cfg_attr(
    rustflow_weaken = "cancel_publish",
    should_panic(expected = "failing interleaving")
)]
fn cancel_handshake_fan_in() {
    let stats = Checker::new()
        .preemption_bound(Some(2))
        .max_schedules(60_000)
        .check("cancel_handshake_fan_in", || {
            // One iteration of A → C ← B (3 tokens: the skip path still
            // counts down join counters and `alive`, so C is published
            // and all 3 pops return in every interleaving) with a
            // concurrent canceller.
            let harness = RearmHarness::fan_in(1);
            let h = Arc::clone(&harness);
            let canceller = thread::spawn(move || h.cancel());
            let workers: Vec<_> = [2usize, 1]
                .into_iter()
                .map(|pops| {
                    let h = Arc::clone(&harness);
                    thread::spawn(move || {
                        for _ in 0..pops {
                            let token = h.pop();
                            h.execute(token);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            let requested = canceller.join().unwrap();
            let executed: usize = harness.executions().iter().sum();
            let skips = harness.skips();
            assert_eq!(executed + skips, 3, "every token executed or skipped");
            let result = harness.result().expect("batch must resolve");
            if skips > 0 {
                assert!(requested, "a skip implies the cancel found a live run");
                match result {
                    Err(e) if e.is_cancelled() => {}
                    other => panic!("skipped run must resolve Cancelled, got {other:?}"),
                }
            }
        });
    assert!(stats.dfs_complete, "schedule space must be fully explored");
}
