//! `rustflow-check`: a dependency-free, loom-style deterministic
//! interleaving model checker for rustflow's lock-free core.
//!
//! # How it works
//!
//! A model is an ordinary closure that spawns threads via
//! [`thread::spawn`] and communicates through the shimmed primitives in
//! [`atomic`], [`sync`], and [`cell`]. Inside [`Checker::check`] (or the
//! [`model`] shorthand), those shims hand control to a cooperative
//! scheduler that runs exactly one thread at a time and treats every
//! primitive operation as an explicit *choice*: which thread runs next,
//! and — because the engine models C11-style weak memory with per-location
//! modification orders and vector clocks — which of the legally visible
//! stores a load returns. The checker then explores the choice tree:
//!
//! * **exhaustive DFS** with a preemption bound (schedules that preempt a
//!   runnable thread more than `preemption_bound` times are skipped), and
//! * optional **seeded random exploration** for state spaces too large to
//!   enumerate, where every iteration's schedule derives from a printable
//!   64-bit seed.
//!
//! A failing execution (assertion panic in model code, detected data race
//! on a [`cell::CheckedCell`], or deadlock — every live thread blocked)
//! aborts exploration and panics with the failing schedule in replayable
//! form. Replay it with either environment variable:
//!
//! ```text
//! RUSTFLOW_CHECK_SCHEDULE="1.0.3..." cargo test -p rustflow-check failing_test
//! RUSTFLOW_CHECK_SEED=12345        cargo test -p rustflow-check failing_test
//! ```
//!
//! The same shim types compile to thin wrappers over `std` when no model
//! execution is active, which is what lets `rustflow` route its entire
//! sync layer through them under the `rustflow_check` feature without
//! perturbing normal builds.

#![warn(missing_docs)]

mod clock;
mod engine;

pub mod atomic;
pub mod cell;
pub mod sanitize;
pub mod sync;
pub mod thread;

pub use sanitize::{SanitizeOutcome, Sanitizer};

use engine::{Choice, ExecCfg, Rt};
use std::sync::{Arc, OnceLock};

/// True when the calling thread should skip multi-thread shutdown
/// protocols because its model execution is being torn down: either the
/// engine is aborting the schedule, or the caller itself is unwinding
/// (e.g. a failed assertion running destructors). Instrumented shutdown
/// code (an executor joining its workers) must bail out in this state —
/// its peer threads are unwinding and will never reach the protocol.
/// Always `false` outside a model execution.
pub fn model_teardown() -> bool {
    match engine::current() {
        None => false,
        Some((rt, _)) => std::thread::panicking() || engine::aborting(&rt),
    }
}

/// Whether a caught panic payload is the engine's internal control-flow
/// unwind. Instrumented code that catches panics (an executor isolating a
/// task body) must rethrow these instead of handling them as task
/// failures, or teardown would touch state the abort left inconsistent.
pub fn is_model_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<engine::ModelAbort>()
}

/// Suppresses the default "thread panicked" output for the engine's
/// internal control-flow unwinds (thread teardown on abort), which are
/// expected on every failing or pruned schedule.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<engine::ModelAbort>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Outcome of a single execution.
struct Outcome {
    choices: Vec<Choice>,
    failure: Option<String>,
    pruned: bool,
    steps: u64,
    /// Sanitizer findings (report-and-continue mode only).
    reports: Vec<String>,
}

fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    cfg: &ExecCfg,
    prefix: Vec<Choice>,
    rng: Option<u64>,
) -> Outcome {
    let rt = Rt::new(cfg.clone(), prefix, rng);
    let body = Arc::clone(f);
    let rt_main = Arc::clone(&rt);
    let main = std::thread::Builder::new()
        .name("rustflow-check-0".into())
        .spawn(move || {
            engine::run_thread(rt_main, 0, move || body());
        })
        .expect("spawn model main thread");

    {
        let mut g = rt.mu.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if g.done || g.failure.is_some() || g.pruned {
                break;
            }
            g = rt.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = main.join();
    // Threads spawned inside the model unwind on abort / exit on
    // completion; collect their real handles.
    loop {
        let h = rt.handles.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let g = rt.mu.lock().unwrap_or_else(|e| e.into_inner());
    Outcome {
        choices: g.choices.clone(),
        failure: g.failure.clone(),
        pruned: g.pruned,
        steps: g.steps,
        reports: g.reports.clone(),
    }
}

/// Exploration statistics, for logging state-space sizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Schedules explored by the exhaustive DFS phase.
    pub dfs_schedules: u64,
    /// Whether DFS enumerated the whole (bounded) choice tree.
    pub dfs_complete: bool,
    /// Schedules explored by the random phase.
    pub random_schedules: u64,
    /// Executions abandoned for exceeding the per-execution step budget.
    pub pruned: u64,
    /// Largest number of primitive steps seen in one execution.
    pub max_steps: u64,
}

/// Configurable model-checker front end.
#[derive(Debug, Clone)]
pub struct Checker {
    preemption_bound: Option<usize>,
    max_steps: u64,
    max_schedules: u64,
    random_iters: u64,
    seed: u64,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker {
            preemption_bound: Some(2),
            max_steps: 20_000,
            max_schedules: 100_000,
            random_iters: 0,
            seed: 0x5eed_f10c,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn schedule_string(choices: &[Choice]) -> String {
    choices
        .iter()
        .map(|c| c.picked.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn parse_schedule(s: &str) -> Vec<Choice> {
    s.split('.')
        .filter(|p| !p.is_empty())
        .map(|p| Choice {
            // 0 = "option count unknown" (skips the replay consistency
            // assert; the engine clamps the pick).
            options: 0,
            picked: p.trim().parse().unwrap_or(0),
        })
        .collect()
}

impl Checker {
    /// A checker with the default bounds (preemption bound 2, 20k steps
    /// per execution, 100k DFS schedules, no random phase).
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Maximum number of *preemptions* (switching away from a runnable
    /// thread) per schedule; `None` removes the bound.
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Checker {
        self.preemption_bound = bound;
        self
    }

    /// Per-execution step budget; schedules exceeding it are pruned.
    pub fn max_steps(mut self, steps: u64) -> Checker {
        self.max_steps = steps;
        self
    }

    /// DFS schedule budget; when exhausted, exploration falls through to
    /// the random phase (if configured).
    pub fn max_schedules(mut self, n: u64) -> Checker {
        self.max_schedules = n;
        self
    }

    /// Number of seeded random schedules to run after (or instead of) an
    /// incomplete DFS.
    pub fn random_iters(mut self, n: u64) -> Checker {
        self.random_iters = n;
        self
    }

    /// Base seed of the random phase (per-iteration seeds derive from it).
    pub fn seed(mut self, seed: u64) -> Checker {
        self.seed = seed;
        self
    }

    /// Explores `f` and panics — printing the replayable schedule — on
    /// the first failing interleaving. Returns exploration statistics.
    pub fn check(&self, name: &str, f: impl Fn() + Send + Sync + 'static) -> Stats {
        install_quiet_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let cfg = ExecCfg {
            preemption_bound: self.preemption_bound,
            max_steps: self.max_steps,
            pct: None,
            sanitize: false,
        };
        let mut stats = Stats::default();

        // Replay modes trump exploration.
        if let Ok(s) = std::env::var("RUSTFLOW_CHECK_SCHEDULE") {
            let out = run_once(&f, &cfg, parse_schedule(&s), None);
            if let Some(failure) = out.failure {
                self.report(name, &failure, &out.choices, None);
            }
            eprintln!(
                "rustflow-check[{name}]: schedule replay passed ({} steps)",
                out.steps
            );
            stats.dfs_schedules = 1;
            return stats;
        }
        if let Ok(s) = std::env::var("RUSTFLOW_CHECK_SEED") {
            let seed: u64 = s.trim().parse().unwrap_or_else(|_| {
                panic!("RUSTFLOW_CHECK_SEED must be an unsigned integer, got {s:?}")
            });
            let out = run_once(&f, &cfg, Vec::new(), Some(seed));
            if let Some(failure) = out.failure {
                self.report(name, &failure, &out.choices, Some(seed));
            }
            eprintln!(
                "rustflow-check[{name}]: seed {seed} replay passed ({} steps)",
                out.steps
            );
            stats.random_schedules = 1;
            return stats;
        }

        // Phase 1: exhaustive DFS with prefix backtracking. Each run
        // replays `prefix` then extends it greedily with choice 0; the
        // next prefix increments the last incrementable choice.
        let mut prefix: Vec<Choice> = Vec::new();
        loop {
            if stats.dfs_schedules >= self.max_schedules {
                break;
            }
            let out = run_once(&f, &cfg, std::mem::take(&mut prefix), None);
            stats.dfs_schedules += 1;
            stats.max_steps = stats.max_steps.max(out.steps);
            if out.pruned {
                stats.pruned += 1;
            }
            if let Some(failure) = out.failure {
                self.report(name, &failure, &out.choices, None);
            }
            let mut next = out.choices;
            let mut backtracked = false;
            while let Some(last) = next.pop() {
                if last.picked + 1 < last.options {
                    next.push(Choice {
                        options: last.options,
                        picked: last.picked + 1,
                    });
                    backtracked = true;
                    break;
                }
            }
            if !backtracked {
                stats.dfs_complete = true;
                break;
            }
            prefix = next;
        }

        // Phase 2: seeded random exploration (for spaces DFS didn't cover).
        if !stats.dfs_complete && self.random_iters > 0 {
            for i in 0..self.random_iters {
                let seed = splitmix64(self.seed.wrapping_add(i));
                let out = run_once(&f, &cfg, Vec::new(), Some(seed));
                stats.random_schedules += 1;
                stats.max_steps = stats.max_steps.max(out.steps);
                if out.pruned {
                    stats.pruned += 1;
                }
                if let Some(failure) = out.failure {
                    self.report(name, &failure, &out.choices, Some(seed));
                }
            }
        }

        eprintln!(
            "rustflow-check[{name}]: {} DFS schedules ({}), {} random, {} pruned, max {} steps/exec",
            stats.dfs_schedules,
            if stats.dfs_complete { "complete" } else { "budget-capped" },
            stats.random_schedules,
            stats.pruned,
            stats.max_steps,
        );
        stats
    }

    fn report(&self, name: &str, failure: &str, choices: &[Choice], seed: Option<u64>) -> ! {
        let sched = schedule_string(choices);
        let seed_line = match seed {
            Some(s) => {
                format!("\n  or:     RUSTFLOW_CHECK_SEED={s} cargo test -p rustflow-check {name}")
            }
            None => String::new(),
        };
        panic!(
            "rustflow-check[{name}] found a failing interleaving:\n  {failure}\n  \
             schedule: {sched}\n  \
             replay: RUSTFLOW_CHECK_SCHEDULE=\"{sched}\" cargo test -p rustflow-check {name}{seed_line}"
        );
    }
}

/// Checks `f` with the default [`Checker`] bounds.
pub fn model(f: impl Fn() + Send + Sync + 'static) -> Stats {
    Checker::new().check("model", f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{fence, AtomicBool, AtomicUsize};
    use crate::cell::CheckedCell;
    use crate::sync::{Condvar, Mutex};
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
    use std::sync::Arc;

    #[test]
    fn shims_work_outside_models() {
        // No model context: everything must behave like std.
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, SeqCst), 1);
        assert_eq!(a.load(Acquire), 3);
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, SeqCst));
        assert!(b.load(Relaxed));
        fence(SeqCst);
    }

    #[test]
    fn sequential_model_runs_once() {
        let stats = model(|| {
            let a = AtomicUsize::new(0);
            a.store(7, Relaxed);
            assert_eq!(a.load(Relaxed), 7);
        });
        assert!(stats.dfs_complete);
        assert_eq!(stats.dfs_schedules, 1);
    }

    #[test]
    fn message_passing_release_acquire_passes() {
        model(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, fl) = (Arc::clone(&data), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                d.store(42, Relaxed);
                fl.store(true, Release);
            });
            if flag.load(Acquire) {
                assert_eq!(data.load(Relaxed), 42, "acquire must see the payload");
            }
            t.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "failing interleaving")]
    fn message_passing_relaxed_fails() {
        model(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, fl) = (Arc::clone(&data), Arc::clone(&flag));
            let t = crate::thread::spawn(move || {
                d.store(42, Relaxed);
                fl.store(true, Relaxed); // BUG: no release edge
            });
            if flag.load(Acquire) {
                assert_eq!(data.load(Relaxed), 42);
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn store_buffering_with_sc_fences_passes() {
        // Dekker core: with SeqCst fences both threads cannot read 0.
        model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = crate::thread::spawn(move || {
                x2.store(1, Relaxed);
                fence(SeqCst);
                y2.load(Relaxed)
            });
            y.store(1, Relaxed);
            fence(SeqCst);
            let r0 = x.load(Relaxed);
            let r1 = t.join().unwrap();
            assert!(r0 == 1 || r1 == 1, "store buffering: both read 0");
        });
    }

    #[test]
    #[should_panic(expected = "failing interleaving")]
    fn store_buffering_without_fences_fails() {
        model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = crate::thread::spawn(move || {
                x2.store(1, Relaxed);
                y2.load(Relaxed)
            });
            y.store(1, Relaxed);
            let r0 = x.load(Relaxed);
            let r1 = t.join().unwrap();
            assert!(r0 == 1 || r1 == 1, "store buffering: both read 0");
        });
    }

    #[test]
    fn mutex_serializes_plain_access() {
        model(|| {
            let cell = Arc::new(Mutex::new(0u64));
            let c = Arc::clone(&cell);
            let t = crate::thread::spawn(move || {
                *c.lock() += 1;
            });
            *cell.lock() += 1;
            t.join().unwrap();
            assert_eq!(*cell.lock(), 2);
        });
    }

    #[test]
    #[should_panic(expected = "data race")]
    fn unsynchronized_cell_write_is_a_race() {
        model(|| {
            let cell = Arc::new(CheckedCell::new(0u64));
            let c = Arc::clone(&cell);
            let t = crate::thread::spawn(move || {
                // SAFETY: intentionally racy; the model detects it.
                unsafe { c.with_mut(|p| *p = 1) };
            });
            // SAFETY: intentionally racy; the model detects it.
            unsafe { cell.with_mut(|p| *p = 2) };
            t.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn lost_wakeup_is_a_deadlock() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p = Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (m, cv) = &*p;
                let mut ready = m.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            });
            // BUG: flips the flag but never notifies — some interleaving
            // parks the waiter after the flag check, forever.
            *pair.0.lock() = true;
            t.join().unwrap();
        });
    }

    #[test]
    fn condvar_handshake_passes() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p = Arc::clone(&pair);
            let t = crate::thread::spawn(move || {
                let (m, cv) = &*p;
                let mut ready = m.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            });
            {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_one();
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn rmw_is_atomic() {
        model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = crate::thread::spawn(move || {
                n2.fetch_add(1, Relaxed);
            });
            n.fetch_add(1, Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(SeqCst), 2, "fetch_add must never lose an update");
        });
    }

    #[test]
    fn seed_replay_is_deterministic() {
        // The same seed must produce the same schedule string.
        let sched = |seed: u64| {
            let f: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = crate::thread::spawn(move || {
                    n2.store(1, Relaxed);
                });
                let _ = n.load(Relaxed);
                t.join().unwrap();
            });
            let cfg = ExecCfg {
                preemption_bound: None,
                max_steps: 10_000,
                pct: None,
                sanitize: false,
            };
            let out = run_once(&f, &cfg, Vec::new(), Some(seed));
            assert!(out.failure.is_none());
            schedule_string(&out.choices)
        };
        assert_eq!(sched(42), sched(42));
    }
}
