//! Vector clocks: the happens-before bookkeeping of the model.
//!
//! Every model thread carries a [`VClock`]; component `t` counts the
//! operations thread `t` has performed that this thread (transitively)
//! knows about. Synchronizing operations (release stores read by acquire
//! loads, mutex hand-offs, thread spawn/join, SC fences) *join* clocks;
//! the checker derives all its ordering judgements — which stores a load
//! may still return, whether two plain accesses race — from these clocks.

/// A grow-on-demand vector clock indexed by model-thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// The empty clock (knows about nothing).
    pub(crate) fn new() -> VClock {
        VClock(Vec::new())
    }

    /// Component for thread `tid` (0 when never touched).
    #[inline]
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Sets component `tid` to `max(current, value)`.
    #[cfg(test)]
    #[inline]
    pub(crate) fn raise(&mut self, tid: usize, value: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        if self.0[tid] < value {
            self.0[tid] = value;
        }
    }

    /// Increments component `tid` by one and returns the new value.
    #[inline]
    pub(crate) fn bump(&mut self, tid: usize) -> u64 {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Pointwise maximum: afterwards `self` knows everything `other` knows.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(other.0.iter()) {
            if *a < b {
                *a = b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.raise(0, 3);
        a.raise(2, 1);
        let mut b = VClock::new();
        b.raise(0, 1);
        b.raise(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(9), 0);
    }

    #[test]
    fn bump_counts() {
        let mut a = VClock::new();
        assert_eq!(a.bump(1), 1);
        assert_eq!(a.bump(1), 2);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(0), 0);
    }
}
