//! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Inside a model execution, spawning registers a new *model* thread
//! (backed by a real OS thread that only ever runs when the engine says
//! so) and `join` is a schedulable blocking point carrying the terminated
//! thread's happens-before view. Outside a model, these delegate to
//! `std::thread`.

use crate::engine;
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        rt: Arc<engine::Rt>,
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
}

/// Handle to a spawned (model or real) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(h) => h.join(),
            Inner::Model { rt, tid, result } => {
                let (_, me) = engine::current()
                    .expect("model JoinHandle joined from outside its model execution");
                engine::join_thread(&rt, me, tid);
                match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    // The target panicked: the engine has already recorded
                    // the failure and is aborting the execution; unwind.
                    None => std::panic::panic_any(engine::ModelAbort),
                }
            }
        }
    }
}

/// Spawns a thread. Inside a model execution the new thread is scheduled
/// deterministically by the engine.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named(None, f)
}

/// [`spawn`] with a thread name. In model mode the backing OS thread is
/// named after its model tid instead (the scheduler output refers to
/// tids); outside a model the name is applied to the real thread.
pub fn spawn_named<F, T>(name: Option<String>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match engine::current() {
        None => {
            let mut b = std::thread::Builder::new();
            if let Some(name) = name {
                b = b.name(name);
            }
            JoinHandle(Inner::Real(b.spawn(f).expect("spawn thread")))
        }
        Some((rt, me)) => {
            let tid = engine::register_thread(&rt, me);
            let result = Arc::new(Mutex::new(None));
            let slot = Arc::clone(&result);
            let rt2 = Arc::clone(&rt);
            let real = std::thread::Builder::new()
                .name(format!("rustflow-check-{tid}"))
                .spawn(move || {
                    engine::run_thread(rt2, tid, move || {
                        let v = f();
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    });
                })
                .expect("spawn model thread");
            rt.handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(real);
            JoinHandle(Inner::Model { rt, tid, result })
        }
    }
}

/// An explicit interleaving point (no memory effect). A real
/// `yield_now` outside a model.
pub fn yield_now() {
    match engine::current() {
        None => std::thread::yield_now(),
        Some((rt, me)) => engine::yield_point(&rt, me),
    }
}
