//! Race-checked plain-memory cell (the model's `UnsafeCell`).
//!
//! Atomics alone cannot catch a publication bug whose *symptom* is a plain
//! data race — e.g. downgrading the event ring's `seq.store(.., Release)`
//! to `Relaxed` still produces the right sequence numbers, but the
//! `SchedEvent` payload write is then unordered with the consumer's read.
//! [`CheckedCell`] closes that gap: every access is reported to the
//! engine, which checks it (via vector clocks) against all prior accesses
//! and fails the execution when a write is concurrent with any other
//! access, loom-style.
//!
//! Outside a model execution the cell is a zero-bookkeeping `UnsafeCell`
//! wrapper; the core's facade supplies an identical plain type in normal
//! builds, so call sites are written once against the `with`/`with_mut`
//! API.

use crate::engine;
use std::cell::UnsafeCell;

/// An `UnsafeCell` whose accesses are race-checked inside model runs.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct CheckedCell<T>(UnsafeCell<T>);

// SAFETY: all access goes through the `unsafe` `with`/`with_mut` API,
// whose contract makes the *caller* responsible for cross-thread
// exclusion (and the model verifies that claim at runtime). This mirrors
// the stance of the core's `SyncCell`.
unsafe impl<T: Send> Send for CheckedCell<T> {}
unsafe impl<T: Send> Sync for CheckedCell<T> {}

impl<T> CheckedCell<T> {
    /// Creates a cell holding `value`.
    pub const fn new(value: T) -> CheckedCell<T> {
        CheckedCell(UnsafeCell::new(value))
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Runs `f` with a shared raw pointer to the contents, recording a
    /// plain **read** of the cell.
    ///
    /// # Safety
    /// The caller asserts no concurrent mutation: in a model run a
    /// violation is *detected* and fails the execution; outside one it is
    /// undefined behaviour, exactly as with a raw `UnsafeCell`.
    #[track_caller]
    pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((rt, me)) = engine::current() {
            engine::cell_read(&rt, me, self.addr(), std::panic::Location::caller());
        }
        f(self.0.get())
    }

    /// Runs `f` with an exclusive raw pointer to the contents, recording a
    /// plain **write** of the cell.
    ///
    /// # Safety
    /// The caller asserts exclusive access for the duration of `f`; see
    /// [`CheckedCell::with`].
    #[track_caller]
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((rt, me)) = engine::current() {
            engine::cell_write(&rt, me, self.addr(), std::panic::Location::caller());
        }
        f(self.0.get())
    }

    /// Consumes the cell and returns the value (safe: requires ownership).
    pub fn into_inner(self) -> T {
        if let Some((rt, _)) = engine::current() {
            engine::cell_retire(&rt, self.addr());
        }
        let this = std::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is never dropped (ManuallyDrop), so the value is
        // read out exactly once.
        unsafe { std::ptr::read(this.0.get()) }
    }
}

impl<T> Drop for CheckedCell<T> {
    fn drop(&mut self) {
        if let Some((rt, _)) = engine::current() {
            engine::cell_retire(&rt, self.addr());
        }
    }
}
