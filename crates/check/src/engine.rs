//! The deterministic scheduler and weak-memory model.
//!
//! # Execution model
//!
//! Every model "thread" is a real OS thread, but **exactly one runs at a
//! time**: each shimmed operation (atomic load/store/RMW, fence, mutex,
//! condvar, cell access, spawn/join) first calls into the engine, which
//! decides — as an explicit, recorded *choice* — which thread continues.
//! A full execution is therefore determined by its choice string, which
//! makes schedules exhaustively enumerable (DFS over the choice tree with
//! a preemption bound) and exactly replayable (a recorded path or a
//! 64-bit seed re-runs the same interleaving).
//!
//! # Memory model
//!
//! The checker models a practical subset of the C11/Rust memory model,
//! close to what `loom` implements:
//!
//! * every atomic keeps its **modification order** as a list of store
//!   events, each stamped with the writer's vector clock;
//! * a load may return **any** store that is not superseded — not older
//!   than a store the loading thread already observed (per-location
//!   coherence) and not older than a store it *knows about* through
//!   happens-before;
//! * `Release`/`Acquire` pairs join clocks (including release sequences
//!   through RMWs and release/acquire *fences*);
//! * `SeqCst` operations additionally maintain a global order: an SC load
//!   may not return a store older than the latest SC store of that
//!   location, and SC fences join-and-publish through a global clock,
//!   which is what makes store-buffering (Dekker) patterns checkable;
//! * plain (non-atomic) accesses through the checked cell are not ordered
//!   at all — they are *race-checked* against the clocks, and a pair of
//!   unordered conflicting accesses fails the execution.
//!
//! The model is deliberately a little stronger than C11 in one corner
//! (every SC operation publishes through one global clock), so it can
//! miss exotic SC-related bugs, but it never reports a false positive for
//! code that is correct under C11.

use crate::clock::VClock;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind model threads when an execution ends
/// early (failure elsewhere, abandoned schedule, step budget).
pub(crate) struct ModelAbort;

/// Source location of a shimmed access, threaded down from the call site
/// via `#[track_caller]` so race/lock reports can name both sides.
pub(crate) type Site = &'static std::panic::Location<'static>;

/// What a thread is currently blocked on (`None` = runnable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Block {
    /// Runnable.
    None,
    /// Waiting for thread `tid` to finish.
    Join(usize),
    /// Waiting for the mutex at this registration id to be released.
    Mutex(usize),
    /// Parked on the condvar at this registration id.
    Condvar(usize),
}

/// Per-model-thread scheduler state.
pub(crate) struct ThreadState {
    pub(crate) block: Block,
    pub(crate) finished: bool,
    /// Everything this thread knows happened (its own ops included).
    pub(crate) view: VClock,
    /// Release views acquired by relaxed loads, pending an acquire fence.
    pub(crate) pending: VClock,
    /// View captured by the latest release/SC fence; relaxed stores after
    /// it carry this view as their release payload.
    pub(crate) release_fence: Option<VClock>,
    /// Per-atomic floor on the modification-order index this thread may
    /// still read (per-location coherence).
    pub(crate) observed: HashMap<usize, usize>,
    /// PCT scheduling priority (highest-priority runnable thread runs).
    prio: u64,
    /// The current condvar park is a *timed* wait: when every thread is
    /// blocked, timed waiters "time out" instead of deadlocking.
    timed: bool,
    /// Set when a timed wait was woken by the timeout path.
    timed_out: bool,
    /// Mutexes currently held, with their acquisition sites (lockdep).
    held: Vec<(usize, Site)>,
}

impl ThreadState {
    fn new(view: VClock, prio: u64) -> ThreadState {
        ThreadState {
            block: Block::None,
            finished: false,
            view,
            pending: VClock::new(),
            release_fence: None,
            observed: HashMap::new(),
            prio,
            timed: false,
            timed_out: false,
            held: Vec::new(),
        }
    }
}

/// One store event in an atomic's modification order.
pub(crate) struct StoreEv {
    pub(crate) val: u64,
    /// Writer thread id; `usize::MAX` marks the initial value, which
    /// happens-before everything.
    pub(crate) writer: usize,
    /// The writer's own clock component at the store.
    pub(crate) wseq: u64,
    /// Release payload: the clock an acquire reader joins. `None` for
    /// relaxed stores with no preceding release fence.
    pub(crate) rel: Option<VClock>,
    /// Whether the store was `SeqCst`.
    pub(crate) sc: bool,
}

impl StoreEv {
    /// Is this store known to (happens-before) `view`?
    #[inline]
    fn known_to(&self, view: &VClock) -> bool {
        self.writer == usize::MAX || view.get(self.writer) >= self.wseq
    }
}

#[derive(Default)]
pub(crate) struct AtomicState {
    pub(crate) stores: Vec<StoreEv>,
    /// Modification-order index of the latest SC store, if any.
    pub(crate) last_sc: Option<usize>,
}

/// Access history of a checked (plain-memory) cell since its last write.
#[derive(Default)]
struct CellState {
    /// Stable per-execution id (registration order), used in reports.
    uid: u64,
    /// The last write, as (writer tid, writer clock component, site).
    write: Option<(usize, u64, Site)>,
    /// Reads since the last write.
    reads: Vec<(usize, u64, Site)>,
}

#[derive(Default)]
struct MutexState {
    /// Stable per-execution id (registration order), used in reports.
    uid: u64,
    locked_by: Option<usize>,
    /// Joined view of every unlocker: lock-acquire joins this.
    released: VClock,
}

#[derive(Default)]
struct CvState {
    waiters: Vec<usize>,
}

/// A recorded scheduling or value choice.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    pub(crate) options: usize,
    pub(crate) picked: usize,
}

/// PCT (probabilistic concurrency testing) scheduling parameters.
#[derive(Clone)]
pub(crate) struct PctCfg {
    /// Number of priority change points per schedule (the `d` of PCT).
    pub(crate) change_points: usize,
    /// Expected schedule length the change points are spread over (the
    /// `k` of PCT).
    pub(crate) avg_steps: u64,
    /// Consecutive-step cap per thread: a thread that keeps running this
    /// long (a spin loop) is demoted so lower-priority threads progress.
    pub(crate) streak_limit: u64,
}

/// Knobs for one execution (copied from the public `Checker`).
#[derive(Clone)]
pub(crate) struct ExecCfg {
    pub(crate) preemption_bound: Option<usize>,
    pub(crate) max_steps: u64,
    /// Priority-based randomized scheduling instead of DFS/uniform-random.
    pub(crate) pct: Option<PctCfg>,
    /// Sanitizer mode: races and lock-order cycles are *reported* (and the
    /// execution continues, TSan-style) instead of aborting the schedule.
    pub(crate) sanitize: bool,
}

/// Priorities drawn for live threads sit above this bit; change-point
/// demotions hand out descending values below it.
const PCT_HIGH: u64 = 1 << 48;

#[inline]
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Mutable state of one execution, shared by all its model threads.
pub(crate) struct Exec {
    cfg: ExecCfg,
    /// Replay prefix + newly made choices.
    pub(crate) choices: Vec<Choice>,
    cursor: usize,
    pub(crate) threads: Vec<ThreadState>,
    active: usize,
    atomics: HashMap<usize, AtomicState>,
    cells: HashMap<usize, CellState>,
    mutexes: HashMap<usize, MutexState>,
    condvars: HashMap<usize, CvState>,
    /// Allocation-order ids handed to cells/mutexes at first registration:
    /// reports must name objects by something stable across process runs,
    /// and heap addresses are not (ASLR, allocator state) — the replay
    /// contract says same seed ⇒ byte-identical reports.
    next_cell_uid: u64,
    next_mutex_uid: u64,
    global_sc: VClock,
    pub(crate) steps: u64,
    preemptions: usize,
    pub(crate) failure: Option<String>,
    /// Execution is being torn down; every thread unwinds via ModelAbort.
    abort: bool,
    /// Step budget exceeded: schedule abandoned, not a failure.
    pub(crate) pruned: bool,
    pub(crate) done: bool,
    /// Random strategy: xorshift state (None = DFS: always pick 0).
    rng: Option<u64>,
    /// Pre-drawn global step indices of the PCT priority change points.
    change_steps: Vec<u64>,
    next_change: usize,
    /// Next (descending) demotion priority handed out at a change point.
    low_next: u64,
    /// Consecutive scheduling points taken by the same thread.
    streak: u64,
    /// Sanitizer findings (races, lock-order cycles), deduplicated.
    pub(crate) reports: Vec<String>,
    report_keys: HashSet<String>,
    /// Lock-order graph: held-mutex -> then-acquired-mutex edges with the
    /// first-seen acquisition sites of both ends.
    lock_edges: HashMap<usize, Vec<(usize, Site, Site)>>,
}

/// The engine handle shared by the driver and every model thread.
pub(crate) struct Rt {
    pub(crate) mu: Mutex<Exec>,
    pub(crate) cv: Condvar,
    /// Real join handles of spawned model threads (driver joins them).
    pub(crate) handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The engine/thread-id pair of the calling model thread, if any.
/// Shims fall back to real `std::sync` behaviour when this is `None`.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

fn lock(rt: &Rt) -> MutexGuard<'_, Exec> {
    rt.mu.lock().unwrap_or_else(|e| e.into_inner())
}

/// True when the execution is aborting (failure found, schedule pruned).
/// Lets instrumented *product* code skip shutdown protocols whose peer
/// threads are already unwinding (e.g. an executor joining its workers).
pub(crate) fn aborting(rt: &Rt) -> bool {
    lock(rt).abort
}

impl Rt {
    pub(crate) fn new(cfg: ExecCfg, prefix: Vec<Choice>, rng: Option<u64>) -> Arc<Rt> {
        // PCT setup: draw the main thread's priority and the change-point
        // step indices from the seed, so the whole lottery is replayable.
        let mut rng = rng;
        let mut change_steps = Vec::new();
        let mut prio0 = 0;
        if let Some(pct) = &cfg.pct {
            let state = rng.get_or_insert(0x9e37_79b9_7f4a_7c15);
            prio0 = PCT_HIGH | (xorshift(state) >> 16);
            for _ in 0..pct.change_points {
                change_steps.push(1 + xorshift(state) % pct.avg_steps.max(1));
            }
            change_steps.sort_unstable();
        }
        Arc::new(Rt {
            mu: Mutex::new(Exec {
                cfg,
                choices: prefix,
                cursor: 0,
                threads: vec![ThreadState::new(VClock::new(), prio0)],
                active: 0,
                atomics: HashMap::new(),
                cells: HashMap::new(),
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                next_cell_uid: 0,
                next_mutex_uid: 0,
                global_sc: VClock::new(),
                steps: 0,
                preemptions: 0,
                failure: None,
                abort: false,
                pruned: false,
                done: false,
                rng,
                change_steps,
                next_change: 0,
                low_next: PCT_HIGH - 1,
                streak: 0,
                reports: Vec::new(),
                report_keys: HashSet::new(),
                lock_edges: HashMap::new(),
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }
}

impl Exec {
    /// Makes (or replays) a choice among `n` options. Trivial choices
    /// (`n <= 1`) are not recorded.
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if n <= 1 {
            return 0;
        }
        if self.cursor < self.choices.len() {
            let c = &mut self.choices[self.cursor];
            self.cursor += 1;
            // `options == 0` marks an env-replayed choice whose option
            // count was not recorded; fill it in for reporting.
            debug_assert!(
                c.options == 0 || c.options == n,
                "non-deterministic replay: option count changed"
            );
            c.options = n;
            return c.picked.min(n - 1);
        }
        let picked = match &mut self.rng {
            None => 0,
            Some(state) => {
                // xorshift64: deterministic per-seed randomness.
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                (x % n as u64) as usize
            }
        };
        self.choices.push(Choice { options: n, picked });
        self.cursor += 1;
        picked
    }

    /// Cell state for `addr`, assigning a stable uid at first sight.
    fn cell_state(&mut self, addr: usize) -> &mut CellState {
        if !self.cells.contains_key(&addr) {
            let uid = self.next_cell_uid;
            self.next_cell_uid += 1;
            self.cells.insert(
                addr,
                CellState {
                    uid,
                    ..CellState::default()
                },
            );
        }
        self.cells.get_mut(&addr).expect("just inserted")
    }

    /// Mutex state for `addr`, assigning a stable uid at first sight.
    fn mutex_state(&mut self, addr: usize) -> &mut MutexState {
        if !self.mutexes.contains_key(&addr) {
            let uid = self.next_mutex_uid;
            self.next_mutex_uid += 1;
            self.mutexes.insert(
                addr,
                MutexState {
                    uid,
                    ..MutexState::default()
                },
            );
        }
        self.mutexes.get_mut(&addr).expect("just inserted")
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished && t.block == Block::None)
            .map(|(i, _)| i)
            .collect()
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }

    /// Records a sanitizer finding (race, lock-order cycle) without
    /// aborting the execution. `key` deduplicates repeat findings from
    /// the same site pair.
    fn report(&mut self, key: String, msg: String) {
        if self.report_keys.insert(key) && self.reports.len() < 64 {
            self.reports.push(msg);
        }
    }

    /// Draws from the execution's seeded rng (PCT priorities).
    fn rng_next(&mut self) -> u64 {
        match &mut self.rng {
            Some(state) => xorshift(state),
            None => 0,
        }
    }

    /// PCT bookkeeping at a scheduling point reached by `me`: fire due
    /// change points (demote the thread that was running) and break spin
    /// streaks. Depends only on the step counter and the recorded seed,
    /// so replays reproduce it exactly.
    fn pct_tick(&mut self, me: usize) {
        let Some(pct) = self.cfg.pct.clone() else {
            return;
        };
        while self.next_change < self.change_steps.len()
            && self.steps >= self.change_steps[self.next_change]
        {
            self.threads[me].prio = self.low_next;
            self.low_next = self.low_next.saturating_sub(1);
            self.next_change += 1;
        }
        if self.streak >= pct.streak_limit {
            self.threads[me].prio = self.low_next;
            self.low_next = self.low_next.saturating_sub(1);
            self.streak = 0;
        }
    }

    fn describe_blocked(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished)
            .map(|(i, t)| format!("thread {} blocked on {:?}", i, t.block))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Picks the next thread to run from `me`'s scheduling point and, if it is
/// not `me`, hands over and waits until `me` is active again (or the
/// execution aborts). Callers hold the engine lock across the whole
/// operation; the guard is passed through.
fn reschedule<'a>(rt: &'a Rt, mut g: MutexGuard<'a, Exec>, me: usize) -> MutexGuard<'a, Exec> {
    let mut runnable = g.runnable();
    if runnable.is_empty() {
        if g.threads.iter().all(|t| t.finished) {
            g.done = true;
            rt.cv.notify_all();
            return g;
        }
        // Before declaring deadlock, let timed condvar waits "time out":
        // in the model, a timeout fires exactly when nothing else can
        // happen, which keeps schedules deterministic.
        let timed: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished && t.timed && matches!(t.block, Block::Condvar(_)))
            .map(|(i, _)| i)
            .collect();
        if timed.is_empty() {
            let msg = format!("deadlock: {}", g.describe_blocked());
            g.fail(msg);
            rt.cv.notify_all();
            return g;
        }
        for &w in &timed {
            if let Block::Condvar(cv) = g.threads[w].block {
                if let Some(state) = g.condvars.get_mut(&cv) {
                    state.waiters.retain(|&x| x != w);
                }
            }
            g.threads[w].block = Block::None;
            g.threads[w].timed = false;
            g.threads[w].timed_out = true;
        }
        runnable = timed;
    }
    // Option order: current thread first (so DFS pick 0 = keep running,
    // exploring the preemption-free schedule first), then others by id.
    let me_runnable = runnable.contains(&me);
    let mut opts: Vec<usize> = Vec::with_capacity(runnable.len());
    if me_runnable {
        opts.push(me);
    }
    opts.extend(runnable.iter().copied().filter(|&t| t != me));
    g.pct_tick(me);
    let pick = if g.cfg.pct.is_some() && g.cursor >= g.choices.len() {
        // PCT: the highest-priority runnable thread runs. Recorded as an
        // ordinary choice so schedule strings replay without the lottery.
        let (i, _) = opts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &t)| g.threads[t].prio)
            .expect("opts nonempty");
        if opts.len() > 1 {
            g.choices.push(Choice {
                options: opts.len(),
                picked: i,
            });
            g.cursor += 1;
        }
        i
    } else {
        // Preemption bound: once spent, a runnable current thread keeps
        // running (forced switches — blocked/finished `me` — stay free).
        let limit = match g.cfg.preemption_bound {
            Some(b) if me_runnable && g.preemptions >= b => 1,
            _ => opts.len(),
        };
        g.choose(limit)
    };
    let next = opts[pick];
    if me_runnable && next != me {
        g.preemptions += 1;
    }
    if next == g.active {
        g.streak += 1;
    } else {
        g.streak = 0;
    }
    g.active = next;
    if next != me {
        rt.cv.notify_all();
        // A finished thread hands off and exits; only live threads wait
        // for their next turn.
        if !g.threads[me].finished {
            g = wait_for_turn(rt, g, me);
        }
    }
    g
}

/// Blocks the calling model thread until it is the active thread, or
/// unwinds it when the execution is being aborted.
pub(crate) fn wait_for_turn<'a>(
    rt: &'a Rt,
    mut g: MutexGuard<'a, Exec>,
    me: usize,
) -> MutexGuard<'a, Exec> {
    loop {
        if g.abort {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        if g.active == me && g.threads[me].block == Block::None && !g.threads[me].finished {
            return g;
        }
        g = rt.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}

/// True while the calling thread is unwinding (a `ModelAbort` or a failed
/// user assertion). Destructors running during the unwind still reach the
/// shims; they must degrade to non-panicking, non-blocking accessors of
/// the newest state instead of re-entering the scheduler — a second panic
/// from inside a `Drop` would abort the whole process.
fn unwinding() -> bool {
    std::thread::panicking()
}

/// One scheduling point: counts a step, enforces the step budget, and
/// lets the scheduler (possibly) switch threads. Returns with the lock
/// held and `me` active.
fn sched_point<'a>(rt: &'a Rt, me: usize) -> MutexGuard<'a, Exec> {
    let mut g = lock(rt);
    if g.abort {
        drop(g);
        std::panic::panic_any(ModelAbort);
    }
    g.steps += 1;
    if g.steps > g.cfg.max_steps {
        g.pruned = true;
        g.abort = true;
        rt.cv.notify_all();
        drop(g);
        std::panic::panic_any(ModelAbort);
    }
    reschedule(rt, g, me)
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

/// Registers a new model thread whose initial view is inherited from
/// `parent` (spawn is a release edge) and returns its tid.
pub(crate) fn register_thread(rt: &Arc<Rt>, parent: usize) -> usize {
    let mut g = lock(rt);
    let mut view = g.threads[parent].view.clone();
    let tid = g.threads.len();
    view.bump(parent);
    let parent_view = view.clone();
    g.threads[parent].view = parent_view;
    let prio = if g.cfg.pct.is_some() {
        PCT_HIGH | (g.rng_next() >> 16)
    } else {
        0
    };
    g.threads.push(ThreadState::new(view, prio));
    tid
}

/// Body wrapper for every real thread backing a model thread.
pub(crate) fn run_thread(rt: Arc<Rt>, me: usize, body: impl FnOnce()) {
    set_current(Some((Arc::clone(&rt), me)));
    {
        // Wait to be scheduled for the first time.
        let g = lock(&rt);
        let g = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wait_for_turn(&rt, g, me)
        })) {
            Ok(g) => g,
            Err(p) => {
                set_current(None);
                finish_thread(&rt, me, abort_payload_message(p));
                return;
            }
        };
        drop(g);
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    set_current(None);
    let failure = match result {
        Ok(()) => None,
        Err(p) => abort_payload_message(p),
    };
    finish_thread(&rt, me, failure);
}

/// `None` for a ModelAbort unwind, otherwise the rendered panic message.
fn abort_payload_message(p: Box<dyn std::any::Any + Send>) -> Option<String> {
    if p.downcast_ref::<ModelAbort>().is_some() {
        return None;
    }
    let msg = if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    Some(msg)
}

/// Marks `me` finished, records a failure if its body panicked, releases
/// joiners, and hands the schedule to the next runnable thread.
fn finish_thread(rt: &Rt, me: usize, failure: Option<String>) {
    let mut g = lock(rt);
    g.threads[me].finished = true;
    g.threads[me].block = Block::None;
    if let Some(msg) = failure {
        let m = format!("model thread {me} panicked: {msg}");
        g.fail(m);
        rt.cv.notify_all();
        return;
    }
    // Joiners become runnable and learn everything we did.
    let my_view = g.threads[me].view.clone();
    for t in g.threads.iter_mut() {
        if t.block == Block::Join(me) {
            t.block = Block::None;
            t.view.join(&my_view);
        }
    }
    if g.abort {
        rt.cv.notify_all();
        return;
    }
    let g = reschedule(rt, g, me);
    drop(g);
}

/// Blocks `me` until thread `target` finishes (model `join`).
pub(crate) fn join_thread(rt: &Rt, me: usize, target: usize) {
    if unwinding() {
        // A join from a destructor mid-unwind must not re-enter the
        // scheduler (the target unwinds on its own once the abort lands).
        return;
    }
    let mut g = sched_point(rt, me);
    if !g.threads[target].finished {
        g.threads[me].block = Block::Join(target);
        let g2 = reschedule(rt, g, me);
        g = wait_for_turn(rt, g2, me);
    } else {
        let tv = g.threads[target].view.clone();
        g.threads[me].view.join(&tv);
    }
    drop(g);
}

/// An explicit interleaving point with no memory effect.
pub(crate) fn yield_point(rt: &Rt, me: usize) {
    let g = sched_point(rt, me);
    drop(g);
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

use std::sync::atomic::Ordering;

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ensure_atomic(g: &mut Exec, addr: usize, init: u64) -> &mut AtomicState {
    g.atomics.entry(addr).or_insert_with(|| AtomicState {
        stores: vec![StoreEv {
            val: init,
            writer: usize::MAX,
            wseq: 0,
            rel: Some(VClock::new()),
            sc: false,
        }],
        last_sc: None,
    })
}

/// Applies the reader-side clock effects of returning store `idx`.
fn apply_read(g: &mut Exec, me: usize, addr: usize, idx: usize, ord: Ordering) {
    let (rel, _sc) = {
        let st = g.atomics.get(&addr).expect("atomic registered");
        (st.stores[idx].rel.clone(), st.stores[idx].sc)
    };
    if ord == Ordering::SeqCst {
        let gsc = g.global_sc.clone();
        g.threads[me].view.join(&gsc);
    }
    if let Some(rel) = rel {
        if acquires(ord) {
            g.threads[me].view.join(&rel);
        } else {
            g.threads[me].pending.join(&rel);
        }
    }
    let floor = g.threads[me].observed.entry(addr).or_insert(0);
    if *floor < idx {
        *floor = idx;
    }
}

/// Model load: picks (as an explored choice) one of the stores this
/// thread may legally observe.
pub(crate) fn atomic_load(rt: &Rt, me: usize, addr: usize, init: u64, ord: Ordering) -> u64 {
    if unwinding() {
        let mut g = lock(rt);
        let st = ensure_atomic(&mut g, addr, init);
        return st.stores.last().expect("nonempty").val;
    }
    let mut g = sched_point(rt, me);
    let view = g.threads[me].view.clone();
    let observed = g.threads[me].observed.get(&addr).copied().unwrap_or(0);
    let st = ensure_atomic(&mut g, addr, init);
    let n = st.stores.len();
    // Coherence floor: the newest store this thread is *forced* to see.
    let mut lo = observed;
    for (i, s) in st.stores.iter().enumerate().skip(lo) {
        if s.known_to(&view) {
            lo = i;
        }
    }
    if ord == Ordering::SeqCst {
        if let Some(sc) = st.last_sc {
            lo = lo.max(sc);
        }
    }
    // Choice 0 = newest store (SC-execution behaviour first), later
    // choices walk back toward the stalest legal value.
    let span = n - lo;
    let pick = g.choose(span);
    let idx = n - 1 - pick;
    let val = g.atomics.get(&addr).expect("registered").stores[idx].val;
    apply_read(&mut g, me, addr, idx, ord);
    drop(g);
    val
}

/// Model store: appends to the modification order.
pub(crate) fn atomic_store(rt: &Rt, me: usize, addr: usize, init: u64, val: u64, ord: Ordering) {
    if unwinding() {
        let mut g = lock(rt);
        ensure_atomic(&mut g, addr, init);
        let wseq = g.threads[me].view.bump(me);
        let st = g.atomics.get_mut(&addr).expect("registered");
        st.stores.push(StoreEv {
            val,
            writer: me,
            wseq,
            rel: None,
            sc: false,
        });
        return;
    }
    let mut g = sched_point(rt, me);
    ensure_atomic(&mut g, addr, init);
    let wseq = g.threads[me].view.bump(me);
    let rel = if releases(ord) {
        Some(g.threads[me].view.clone())
    } else {
        g.threads[me].release_fence.clone()
    };
    let sc = ord == Ordering::SeqCst;
    if sc {
        let tv = g.threads[me].view.clone();
        g.global_sc.join(&tv);
    }
    let st = g.atomics.get_mut(&addr).expect("registered");
    st.stores.push(StoreEv {
        val,
        writer: me,
        wseq,
        rel,
        sc,
    });
    let idx = st.stores.len() - 1;
    if sc {
        st.last_sc = Some(idx);
    }
    g.threads[me].observed.insert(addr, idx);
    drop(g);
}

/// Model read-modify-write. `f` computes the new value from the current
/// one; per C11 atomicity an RMW always reads the newest store. Returns
/// the previous value.
pub(crate) fn atomic_rmw(
    rt: &Rt,
    me: usize,
    addr: usize,
    init: u64,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    if unwinding() {
        let mut g = lock(rt);
        ensure_atomic(&mut g, addr, init);
        let wseq = g.threads[me].view.bump(me);
        let st = g.atomics.get_mut(&addr).expect("registered");
        let old = st.stores.last().expect("nonempty").val;
        st.stores.push(StoreEv {
            val: f(old),
            writer: me,
            wseq,
            rel: None,
            sc: false,
        });
        return old;
    }
    let mut g = sched_point(rt, me);
    ensure_atomic(&mut g, addr, init);
    if ord == Ordering::SeqCst {
        let gsc = g.global_sc.clone();
        g.threads[me].view.join(&gsc);
    }
    let (old, head_rel) = {
        let st = g.atomics.get(&addr).expect("registered");
        let last = st.stores.last().expect("nonempty");
        (last.val, last.rel.clone())
    };
    if let Some(rel) = &head_rel {
        if acquires(ord) {
            g.threads[me].view.join(rel);
        } else {
            g.threads[me].pending.join(rel);
        }
    }
    let new = f(old);
    let wseq = g.threads[me].view.bump(me);
    // Release-sequence: an RMW store carries the head's release payload
    // forward even when the RMW itself is not a release.
    let own = if releases(ord) {
        Some(g.threads[me].view.clone())
    } else {
        g.threads[me].release_fence.clone()
    };
    let rel = match (own, head_rel) {
        (Some(mut a), Some(b)) => {
            a.join(&b);
            Some(a)
        }
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    };
    let sc = ord == Ordering::SeqCst;
    if sc {
        let tv = g.threads[me].view.clone();
        g.global_sc.join(&tv);
    }
    let st = g.atomics.get_mut(&addr).expect("registered");
    st.stores.push(StoreEv {
        val: new,
        writer: me,
        wseq,
        rel,
        sc,
    });
    let idx = st.stores.len() - 1;
    if sc {
        st.last_sc = Some(idx);
    }
    g.threads[me].observed.insert(addr, idx);
    drop(g);
    old
}

/// Model compare-exchange. Failure reads the newest store with the
/// failure ordering (conservative: no spurious failure, so `_weak`
/// behaves like the strong variant — callers loop anyway and spurious
/// failures would only add schedules, not behaviours).
#[allow(clippy::too_many_arguments)]
pub(crate) fn atomic_cas(
    rt: &Rt,
    me: usize,
    addr: usize,
    init: u64,
    expected: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    if unwinding() {
        let mut g = lock(rt);
        ensure_atomic(&mut g, addr, init);
        let old = g
            .atomics
            .get(&addr)
            .expect("registered")
            .stores
            .last()
            .expect("nonempty")
            .val;
        if old != expected {
            return Err(old);
        }
        let wseq = g.threads[me].view.bump(me);
        let st = g.atomics.get_mut(&addr).expect("registered");
        st.stores.push(StoreEv {
            val: new,
            writer: me,
            wseq,
            rel: None,
            sc: false,
        });
        return Ok(old);
    }
    let mut g = sched_point(rt, me);
    ensure_atomic(&mut g, addr, init);
    let (old, idx) = {
        let st = g.atomics.get(&addr).expect("registered");
        (st.stores.last().expect("nonempty").val, st.stores.len() - 1)
    };
    if old != expected {
        apply_read(&mut g, me, addr, idx, failure);
        drop(g);
        return Err(old);
    }
    if success == Ordering::SeqCst {
        let gsc = g.global_sc.clone();
        g.threads[me].view.join(&gsc);
    }
    let head_rel = g.atomics.get(&addr).expect("registered").stores[idx]
        .rel
        .clone();
    if let Some(rel) = &head_rel {
        if acquires(success) {
            g.threads[me].view.join(rel);
        } else {
            g.threads[me].pending.join(rel);
        }
    }
    let wseq = g.threads[me].view.bump(me);
    let own = if releases(success) {
        Some(g.threads[me].view.clone())
    } else {
        g.threads[me].release_fence.clone()
    };
    let rel = match (own, head_rel) {
        (Some(mut a), Some(b)) => {
            a.join(&b);
            Some(a)
        }
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    };
    let sc = success == Ordering::SeqCst;
    if sc {
        let tv = g.threads[me].view.clone();
        g.global_sc.join(&tv);
    }
    let st = g.atomics.get_mut(&addr).expect("registered");
    st.stores.push(StoreEv {
        val: new,
        writer: me,
        wseq,
        rel,
        sc,
    });
    let nidx = st.stores.len() - 1;
    if sc {
        st.last_sc = Some(nidx);
    }
    g.threads[me].observed.insert(addr, nidx);
    drop(g);
    Ok(old)
}

/// Forgets a dropped atomic so a later allocation at the same address
/// re-registers from its own initial value.
pub(crate) fn atomic_retire(rt: &Rt, addr: usize) {
    let mut g = lock(rt);
    g.atomics.remove(&addr);
    for t in g.threads.iter_mut() {
        t.observed.remove(&addr);
    }
    drop(g);
}

/// Model fence.
pub(crate) fn atomic_fence(rt: &Rt, me: usize, ord: Ordering) {
    if unwinding() {
        return;
    }
    let mut g = sched_point(rt, me);
    if acquires(ord) {
        let p = std::mem::take(&mut g.threads[me].pending);
        g.threads[me].view.join(&p);
    }
    if ord == Ordering::SeqCst {
        let gsc = g.global_sc.clone();
        g.threads[me].view.join(&gsc);
        let tv = g.threads[me].view.clone();
        g.global_sc.join(&tv);
    }
    if releases(ord) {
        let tv = g.threads[me].view.clone();
        g.threads[me].release_fence = Some(tv);
    }
    drop(g);
}

// ---------------------------------------------------------------------------
// Checked plain-memory cells (race detection)
// ---------------------------------------------------------------------------

/// Renders the happens-before evidence for a race between the current
/// access by `me` (with clock `view`) and a prior access `(other, oseq)`.
fn hb_evidence(view: &VClock, me: usize, other: usize, oseq: u64) -> String {
    format!(
        "thread {me}'s view of thread {other} is {} < access clock {oseq} (no happens-before \
         edge); view {view:?}",
        view.get(other)
    )
}

/// Reports or fails on a detected race. In sanitizer mode the finding is
/// recorded and the execution continues (TSan-style, so one schedule can
/// surface several independent races); otherwise the schedule fails.
fn race_found(rt: &Rt, g: &mut MutexGuard<'_, Exec>, key: String, msg: String) {
    if g.cfg.sanitize {
        g.report(key, msg);
        return;
    }
    g.fail(msg);
    rt.cv.notify_all();
}

/// Records a plain read of the cell at `addr`; a read racing with an
/// unordered write fails the execution (or is reported, in sanitize mode).
pub(crate) fn cell_read(rt: &Rt, me: usize, addr: usize, site: Site) {
    if unwinding() {
        return;
    }
    let mut g = lock(rt);
    if g.abort {
        drop(g);
        std::panic::panic_any(ModelAbort);
    }
    let view = g.threads[me].view.clone();
    let (racy, uid) = {
        let cell = g.cell_state(addr);
        let racy = match cell.write {
            Some((w, wseq, wsite)) if w != me && view.get(w) < wseq => Some((w, wseq, wsite)),
            _ => None,
        };
        (racy, cell.uid)
    };
    if let Some((w, wseq, wsite)) = racy {
        let msg = format!(
            "data race: plain read at {site} (thread {me}) is unordered with plain write at \
             {wsite} (thread {w}); {}; cell #{uid}",
            hb_evidence(&view, me, w, wseq)
        );
        race_found(rt, &mut g, format!("race r{site} w{wsite}"), msg);
        if g.abort {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
    }
    let seq = g.threads[me].view.bump(me);
    g.cell_state(addr).reads.push((me, seq, site));
    drop(g);
}

/// Records a plain write of the cell at `addr`; a write racing with any
/// unordered prior access fails the execution (or is reported).
pub(crate) fn cell_write(rt: &Rt, me: usize, addr: usize, site: Site) {
    if unwinding() {
        return;
    }
    let mut g = lock(rt);
    if g.abort {
        drop(g);
        std::panic::panic_any(ModelAbort);
    }
    let view = g.threads[me].view.clone();
    let cell = g.cell_state(addr);
    let uid = cell.uid;
    let mut conflict: Option<(&'static str, usize, u64, Site)> = match cell.write {
        Some((w, wseq, wsite)) if w != me && view.get(w) < wseq => Some(("write", w, wseq, wsite)),
        _ => None,
    };
    for &(r, rseq, rsite) in &cell.reads {
        if r != me && view.get(r) < rseq {
            conflict = Some(("read", r, rseq, rsite));
        }
    }
    if let Some((kind, o, oseq, osite)) = conflict {
        let msg = format!(
            "data race: plain write at {site} (thread {me}) is unordered with plain {kind} at \
             {osite} (thread {o}); {}; cell #{uid}",
            hb_evidence(&view, me, o, oseq)
        );
        race_found(rt, &mut g, format!("race w{site} {kind}{osite}"), msg);
        if g.abort {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
    }
    let seq = g.threads[me].view.bump(me);
    let cell = g.cell_state(addr);
    cell.write = Some((me, seq, site));
    cell.reads.clear();
    drop(g);
}

/// Forgets race-tracking state for a cell being dropped, so a later
/// allocation at the same address starts clean.
pub(crate) fn cell_retire(rt: &Rt, addr: usize) {
    let mut g = lock(rt);
    g.cells.remove(&addr);
    drop(g);
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// Records `addr` acquired by `me` at `site` into the lock-order graph
/// and reports any acquisition-order cycle the new edges close — even
/// when no schedule actually deadlocks on them (lockdep-style).
fn lockdep_acquire(g: &mut Exec, me: usize, addr: usize, site: Site) {
    let uid = g.mutex_state(addr).uid;
    let held = g.threads[me].held.clone();
    for (h, hsite) in held {
        if h == addr {
            continue;
        }
        let edges = g.lock_edges.entry(h).or_default();
        if !edges.iter().any(|&(to, _, _)| to == addr) {
            edges.push((addr, hsite, site));
        }
        // The new edge h -> addr closes a cycle iff addr already reaches h.
        if let Some((esite_from, esite_to)) = lock_path(&g.lock_edges, addr, h) {
            let huid = g.mutex_state(h).uid;
            let (a, b) = (huid.min(uid), huid.max(uid));
            let msg = format!(
                "lock-order cycle: thread {me} acquired mutex #{uid} at {site} while \
                 holding mutex #{huid} (locked at {hsite}), but the reverse order \
                 #{uid} -> #{huid} was established by an acquisition at {esite_to} \
                 while holding the mutex locked at {esite_from}"
            );
            g.report(format!("lockcycle {a} {b}"), msg);
        }
    }
    g.threads[me].held.push((addr, site));
}

/// Is there a path `from ->* to` in the lock-order graph? Returns the
/// sites of the first edge on the path as evidence.
fn lock_path(
    edges: &HashMap<usize, Vec<(usize, Site, Site)>>,
    from: usize,
    to: usize,
) -> Option<(Site, Site)> {
    let mut stack = vec![from];
    let mut seen = HashSet::new();
    let mut first: HashMap<usize, (Site, Site)> = HashMap::new();
    while let Some(n) = stack.pop() {
        for &(next, sa, sb) in edges.get(&n).into_iter().flatten() {
            if !seen.insert(next) {
                continue;
            }
            let ev = if n == from {
                (sa, sb)
            } else {
                first[&n] // evidence propagates from the first hop
            };
            if next == to {
                return Some(ev);
            }
            first.insert(next, ev);
            stack.push(next);
        }
    }
    None
}

/// Model mutex lock: blocks (as a scheduling event) while held elsewhere;
/// acquiring joins the released-view of previous holders.
pub(crate) fn mutex_lock(rt: &Rt, me: usize, addr: usize, site: Site) {
    if unwinding() {
        // A guard taken by a destructor mid-unwind: skip the scheduler
        // entirely (the paired unlock tolerates a non-owner).
        return;
    }
    let mut g = sched_point(rt, me);
    loop {
        let m = g.mutex_state(addr);
        match m.locked_by {
            None => {
                m.locked_by = Some(me);
                let rv = m.released.clone();
                g.threads[me].view.join(&rv);
                if g.cfg.sanitize {
                    lockdep_acquire(&mut g, me, addr, site);
                }
                drop(g);
                return;
            }
            Some(owner) => {
                debug_assert_ne!(owner, me, "model mutex is not reentrant");
                g.threads[me].block = Block::Mutex(addr);
                let g2 = reschedule(rt, g, me);
                g = wait_for_turn(rt, g2, me);
            }
        }
    }
}

/// Model mutex unlock: publishes the holder's view and wakes contenders.
///
/// Never panics: guard destructors run while threads unwind on abort.
pub(crate) fn mutex_unlock(rt: &Rt, me: usize, addr: usize) {
    let mut g = lock(rt);
    let view = g.threads[me].view.clone();
    g.threads[me].held.retain(|&(a, _)| a != addr);
    if g.mutex_state(addr).locked_by != Some(me) {
        // Only reachable while unwinding: a thread aborted inside
        // `condvar_wait` (mutex already released) still drops its guard,
        // and destructor-held guards skip `mutex_lock` entirely. Nothing
        // to undo.
        debug_assert!(g.abort || unwinding(), "unlock by non-owner outside abort");
        return;
    }
    let m = g.mutexes.get_mut(&addr).expect("mutex registered");
    m.locked_by = None;
    m.released.join(&view);
    for t in g.threads.iter_mut() {
        if t.block == Block::Mutex(addr) {
            t.block = Block::None;
        }
    }
    drop(g);
}

/// Forgets a dropped mutex: its registration id (address) may be reused
/// by a later allocation, which must start with fresh lock-order state.
pub(crate) fn mutex_retire(rt: &Rt, addr: usize) {
    let mut g = lock(rt);
    g.mutexes.remove(&addr);
    g.lock_edges.remove(&addr);
    for edges in g.lock_edges.values_mut() {
        edges.retain(|&(to, _, _)| to != addr);
    }
    drop(g);
}

/// Releases `mutex_addr` and parks `me` on `cv_addr` in one engine
/// transaction (so a notifier that takes the mutex next cannot miss the
/// waiter), then blocks until notified (or timed out, for timed waits).
fn cv_park(rt: &Rt, me: usize, cv_addr: usize, mutex_addr: usize, timed: bool) -> bool {
    let mut g = lock(rt);
    if g.abort {
        drop(g);
        std::panic::panic_any(ModelAbort);
    }
    let view = g.threads[me].view.clone();
    g.threads[me].held.retain(|&(a, _)| a != mutex_addr);
    let m = g.mutex_state(mutex_addr);
    debug_assert_eq!(m.locked_by, Some(me), "condvar wait without the lock");
    m.locked_by = None;
    m.released.join(&view);
    for t in g.threads.iter_mut() {
        if t.block == Block::Mutex(mutex_addr) {
            t.block = Block::None;
        }
    }
    g.condvars.entry(cv_addr).or_default().waiters.push(me);
    g.threads[me].block = Block::Condvar(cv_addr);
    g.threads[me].timed = timed;
    g.threads[me].timed_out = false;
    let g2 = reschedule(rt, g, me);
    let mut g3 = wait_for_turn(rt, g2, me);
    g3.threads[me].timed = false;
    let timed_out = std::mem::take(&mut g3.threads[me].timed_out);
    drop(g3);
    timed_out
}

/// Model condvar wait: atomically releases the mutex and parks; once
/// notified, re-acquires the mutex before returning.
#[track_caller]
pub(crate) fn condvar_wait(rt: &Rt, me: usize, cv_addr: usize, mutex_addr: usize) {
    if unwinding() {
        return;
    }
    cv_park(rt, me, cv_addr, mutex_addr, false);
    // Notified: compete for the mutex again.
    mutex_lock(rt, me, mutex_addr, std::panic::Location::caller());
}

/// Model condvar timed wait. The model has no clock: the "timeout" fires
/// exactly when every live thread is blocked (so the only alternative
/// would be a deadlock report). Returns `true` if the wait timed out.
#[track_caller]
pub(crate) fn condvar_wait_timed(rt: &Rt, me: usize, cv_addr: usize, mutex_addr: usize) -> bool {
    if unwinding() {
        return true;
    }
    let timed_out = cv_park(rt, me, cv_addr, mutex_addr, true);
    mutex_lock(rt, me, mutex_addr, std::panic::Location::caller());
    timed_out
}

/// Model condvar notify-one (FIFO).
pub(crate) fn condvar_notify_one(rt: &Rt, me: usize, cv_addr: usize) {
    if unwinding() {
        return;
    }
    let mut g = sched_point(rt, me);
    let woken = {
        let cv = g.condvars.entry(cv_addr).or_default();
        if cv.waiters.is_empty() {
            None
        } else {
            Some(cv.waiters.remove(0))
        }
    };
    if let Some(w) = woken {
        g.threads[w].block = Block::None;
    }
    drop(g);
}

/// Model condvar notify-all.
pub(crate) fn condvar_notify_all(rt: &Rt, me: usize, cv_addr: usize) {
    if unwinding() {
        return;
    }
    let mut g = sched_point(rt, me);
    let woken = std::mem::take(&mut g.condvars.entry(cv_addr).or_default().waiters);
    for w in woken {
        g.threads[w].block = Block::None;
    }
    drop(g);
}
