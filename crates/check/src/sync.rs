//! Model-aware `Mutex` and `Condvar` with the `parking_lot`-style API the
//! core uses (`lock()` returns a guard directly; `Condvar::wait` takes
//! `&mut MutexGuard`).
//!
//! Inside a model execution, lock/unlock/wait/notify are engine events:
//! blocking is a scheduling state, lock hand-off is a happens-before edge,
//! and condvar parking participates in deadlock detection (a lost wakeup
//! shows up as "all threads blocked"). Outside a model they delegate to
//! `std::sync` primitives, so enabled-but-inactive builds behave normally.

use crate::engine;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Model-aware mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    /// Real lock used outside model executions.
    raw: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: the guard protocol (engine-serialized in model mode, `raw` in
// fallback mode) guarantees at most one accessor of `data` at a time, so
// sharing the mutex only requires the payload to be sendable.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// Held std guard in fallback mode; `None` in model mode.
    raw: Option<std::sync::MutexGuard<'a, ()>>,
    /// Model context captured at lock time (`None` in fallback mode).
    ctx: Option<(Arc<engine::Rt>, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            raw: std::sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Acquires the lock, blocking (in model mode: as a schedulable wait)
    /// until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match engine::current() {
            None => MutexGuard {
                lock: self,
                raw: Some(self.raw.lock().unwrap_or_else(|e| e.into_inner())),
                ctx: None,
            },
            Some((rt, me)) => {
                engine::mutex_lock(&rt, me, self.addr(), std::panic::Location::caller());
                MutexGuard {
                    lock: self,
                    raw: None,
                    ctx: Some((rt, me)),
                }
            }
        }
    }

    /// Returns a mutable reference to the value — `&mut self` proves
    /// exclusivity, so no locking (and no engine event) is needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        // Retire before the field move; `Drop` no longer runs for `self`
        // after `data` is taken apart, but destructuring a type with a
        // `Drop` impl needs `ManuallyDrop` plumbing.
        let this = std::mem::ManuallyDrop::new(self);
        if let Some((rt, _)) = engine::current() {
            engine::mutex_retire(&rt, this.addr());
        }
        // SAFETY: `this` is never dropped (ManuallyDrop), so each field
        // is moved out exactly once.
        unsafe {
            let _ = std::ptr::read(&this.raw);
            std::ptr::read(&this.data).into_inner()
        }
    }
}

impl<T> Drop for Mutex<T> {
    fn drop(&mut self) {
        // Forget the registration: a later allocation may reuse this
        // address and must start with fresh lock-order/hand-off state.
        if let Some((rt, _)) = engine::current() {
            engine::mutex_retire(&rt, self.addr());
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means this thread holds the lock
        // (engine-verified in model mode, `raw` in fallback mode), so no
        // other reference to `data` exists.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: see `Deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((rt, me)) = self.ctx.take() {
            engine::mutex_unlock(&rt, me, self.lock.addr());
        }
        // Fallback mode: dropping `raw` releases the std lock.
    }
}

/// Model-aware condition variable.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Atomically releases the guard's mutex and parks until notified;
    /// re-acquires the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.ctx.clone() {
            Some((rt, me)) => {
                engine::condvar_wait(&rt, me, self.addr(), guard.lock.addr());
            }
            None => {
                let raw = guard.raw.take().expect("fallback guard holds the raw lock");
                guard.raw = Some(self.inner.wait(raw).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }

    /// Atomically releases the guard's mutex and parks until notified or
    /// until `deadline`; re-acquires the mutex before returning.
    ///
    /// In model mode there is no clock: the timeout fires exactly when
    /// every live thread is blocked (the deterministic stand-in for "the
    /// deadline passed with no notification coming").
    #[track_caller]
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        match guard.ctx.clone() {
            Some((rt, me)) => WaitTimeoutResult(engine::condvar_wait_timed(
                &rt,
                me,
                self.addr(),
                guard.lock.addr(),
            )),
            None => {
                let raw = guard.raw.take().expect("fallback guard holds the raw lock");
                let timeout = deadline.saturating_duration_since(std::time::Instant::now());
                let (raw, res) = self
                    .inner
                    .wait_timeout(raw, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                guard.raw = Some(raw);
                WaitTimeoutResult(res.timed_out())
            }
        }
    }

    /// Wakes one parked waiter, if any.
    pub fn notify_one(&self) {
        match engine::current() {
            None => {
                self.inner.notify_one();
            }
            Some((rt, me)) => engine::condvar_notify_one(&rt, me, self.addr()),
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        match engine::current() {
            None => {
                self.inner.notify_all();
            }
            Some((rt, me)) => engine::condvar_notify_all(&rt, me, self.addr()),
        }
    }
}

/// Result of a [`Condvar::wait_until`] (parking_lot-compatible shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-aware reader-writer lock with the `parking_lot`-style API.
///
/// In model mode readers are serialized like writers (the model explores
/// interleavings, so losing reader parallelism costs schedules, not
/// soundness — and every read still participates in lock-order analysis
/// and happens-before propagation). Outside a model it is a plain
/// mutex-backed lock, used only on cold paths (observer registration).
#[derive(Debug, Default)]
pub struct RwLock<T>(Mutex<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(Mutex::new(value))
    }

    /// Acquires shared read access (exclusive in model mode; see type
    /// docs).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.lock())
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.lock())
    }
}

/// Shared-access RAII guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T>(MutexGuard<'a, T>);

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access RAII guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T>(MutexGuard<'a, T>);

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
