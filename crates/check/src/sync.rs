//! Model-aware `Mutex` and `Condvar` with the `parking_lot`-style API the
//! core uses (`lock()` returns a guard directly; `Condvar::wait` takes
//! `&mut MutexGuard`).
//!
//! Inside a model execution, lock/unlock/wait/notify are engine events:
//! blocking is a scheduling state, lock hand-off is a happens-before edge,
//! and condvar parking participates in deadlock detection (a lost wakeup
//! shows up as "all threads blocked"). Outside a model they delegate to
//! `std::sync` primitives, so enabled-but-inactive builds behave normally.

use crate::engine;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Model-aware mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    /// Real lock used outside model executions.
    raw: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: the guard protocol (engine-serialized in model mode, `raw` in
// fallback mode) guarantees at most one accessor of `data` at a time, so
// sharing the mutex only requires the payload to be sendable.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// Held std guard in fallback mode; `None` in model mode.
    raw: Option<std::sync::MutexGuard<'a, ()>>,
    /// Model context captured at lock time (`None` in fallback mode).
    ctx: Option<(Arc<engine::Rt>, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            raw: std::sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Acquires the lock, blocking (in model mode: as a schedulable wait)
    /// until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match engine::current() {
            None => MutexGuard {
                lock: self,
                raw: Some(self.raw.lock().unwrap_or_else(|e| e.into_inner())),
                ctx: None,
            },
            Some((rt, me)) => {
                engine::mutex_lock(&rt, me, self.addr());
                MutexGuard {
                    lock: self,
                    raw: None,
                    ctx: Some((rt, me)),
                }
            }
        }
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means this thread holds the lock
        // (engine-verified in model mode, `raw` in fallback mode), so no
        // other reference to `data` exists.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: see `Deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((rt, me)) = self.ctx.take() {
            engine::mutex_unlock(&rt, me, self.lock.addr());
        }
        // Fallback mode: dropping `raw` releases the std lock.
    }
}

/// Model-aware condition variable.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    /// Atomically releases the guard's mutex and parks until notified;
    /// re-acquires the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.ctx.clone() {
            Some((rt, me)) => {
                engine::condvar_wait(&rt, me, self.addr(), guard.lock.addr());
            }
            None => {
                let raw = guard.raw.take().expect("fallback guard holds the raw lock");
                guard.raw = Some(self.inner.wait(raw).unwrap_or_else(|e| e.into_inner()));
            }
        }
    }

    /// Wakes one parked waiter, if any.
    pub fn notify_one(&self) {
        match engine::current() {
            None => {
                self.inner.notify_one();
            }
            Some((rt, me)) => engine::condvar_notify_one(&rt, me, self.addr()),
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        match engine::current() {
            None => {
                self.inner.notify_all();
            }
            Some((rt, me)) => engine::condvar_notify_all(&rt, me, self.addr()),
        }
    }
}
