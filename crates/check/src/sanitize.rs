//! The rustflow sanitizer front end: PCT schedule fuzzing over the *real*
//! executor with report-and-continue race detection and lock-order
//! analysis.
//!
//! Where [`Checker`](crate::Checker) exhaustively explores a small
//! hand-extracted protocol model, [`Sanitizer`] runs full product
//! scenarios — a real `Executor`, real topologies, the composed
//! wsq/ring/notifier stack — under *PCT* (probabilistic concurrency
//! testing, Burckhardt et al., ASPLOS 2010): every model thread draws a
//! random priority from the iteration seed, the highest-priority runnable
//! thread runs, and `d` pre-drawn change points demote the running thread
//! mid-schedule. For bugs of depth ≤ d this finds a failing schedule with
//! probability ≥ 1/(n·k^(d-1)) per iteration — far past what a bounded
//! DFS reaches on executions with tens of thousands of steps.
//!
//! Three detectors run on each schedule:
//!
//! * **Happens-before race detection** (FastTrack-style, over the
//!   engine's vector clocks): every plain access through a
//!   `CheckedCell`/`SyncCell` is checked against all unordered prior
//!   accesses; findings name both access sites, thread ids, and the
//!   clock evidence. Detection is schedule-robust: an unordered pair is
//!   flagged in whatever order it executes.
//! * **Lock-order analysis** (lockdep-style): mutex acquisitions build an
//!   order graph; a cycle is reported the moment the closing edge is
//!   observed, even when no explored schedule actually deadlocks.
//! * **The engine's liveness/abort checks**: deadlock (with timed waits
//!   modeled as firing only at quiescence), step budget, and any
//!   assertion failure in the scenario body.
//!
//! Races and lock cycles are *reported and the execution continues*
//! (TSan-style), so one schedule can surface several independent
//! findings; deadlocks and panics end the iteration.
//!
//! Every iteration is replayable: its schedule derives entirely from a
//! 64-bit seed printed with each finding. Re-run with
//!
//! ```text
//! RUSTFLOW_SANITIZE_SEED=0x1234abcd cargo test -p rustflow \
//!     --features rustflow_check --test sanitize failing_test
//! ```

use crate::engine::{ExecCfg, PctCfg};
use crate::{install_quiet_hook, run_once, splitmix64};
use std::sync::Arc;

/// Per-scenario sanitizer: runs a closure under seeded PCT schedules with
/// race/lock-order/deadlock detection. See the module docs.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    name: String,
    iters: u64,
    change_points: usize,
    avg_steps: u64,
    max_steps: u64,
    seed: u64,
}

/// Everything one [`Sanitizer::run`] observed.
#[derive(Debug, Default)]
pub struct SanitizeOutcome {
    /// Schedules (iterations) explored.
    pub schedules: u64,
    /// Fatal failure of the last iteration (deadlock, assertion panic,
    /// double-fulfilled promise, ...), if any; exploration stops on it.
    pub failure: Option<String>,
    /// Seed of the iteration that produced `failure`.
    pub failing_seed: Option<u64>,
    /// Deduplicated race / lock-order findings across all iterations.
    pub reports: Vec<String>,
    /// One line per iteration: seed, step count, and a hash of the full
    /// schedule. Byte-identical across runs with the same seed — the
    /// determinism contract the replay tests pin down.
    pub trace: String,
    /// Largest step count seen in one schedule.
    pub max_steps: u64,
    /// Iterations abandoned for exceeding the step budget.
    pub pruned: u64,
}

impl SanitizeOutcome {
    /// Did any detector fire?
    pub fn found_anything(&self) -> bool {
        self.failure.is_some() || !self.reports.is_empty()
    }
}

fn schedule_hash(picks: impl Iterator<Item = usize>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in picks {
        h = splitmix64(h ^ p as u64);
    }
    h
}

impl Sanitizer {
    /// A sanitizer with the default budget (64 schedules, 3 change
    /// points, 200k steps per schedule).
    pub fn new(name: &str) -> Sanitizer {
        Sanitizer {
            name: name.to_string(),
            iters: 64,
            change_points: 3,
            avg_steps: 2_000,
            max_steps: 200_000,
            seed: 0x5a71_71ce_5eed_f10c,
        }
    }

    /// Number of PCT schedules to explore.
    pub fn iters(mut self, n: u64) -> Sanitizer {
        self.iters = n;
        self
    }

    /// PCT priority change points per schedule (the bug-depth budget).
    pub fn change_points(mut self, d: usize) -> Sanitizer {
        self.change_points = d;
        self
    }

    /// Expected schedule length the change points are spread over.
    pub fn avg_steps(mut self, k: u64) -> Sanitizer {
        self.avg_steps = k;
        self
    }

    /// Hard per-schedule step budget (schedules exceeding it are pruned).
    pub fn max_steps(mut self, n: u64) -> Sanitizer {
        self.max_steps = n;
        self
    }

    /// Base seed; per-iteration seeds derive from it.
    pub fn seed(mut self, seed: u64) -> Sanitizer {
        self.seed = seed;
        self
    }

    /// Explores `f` under PCT schedules and returns everything found.
    ///
    /// Honors two environment variables: `RUSTFLOW_SANITIZE_SEED` (run
    /// exactly one schedule with that seed — the replay path) and
    /// `RUSTFLOW_SANITIZE_ITERS` (override the iteration budget, e.g. to
    /// cap CI time).
    pub fn run(&self, f: impl Fn() + Send + Sync + 'static) -> SanitizeOutcome {
        install_quiet_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let forced_seed = std::env::var("RUSTFLOW_SANITIZE_SEED").ok().map(|s| {
            let t = s.trim();
            let parsed = match t.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => t.parse(),
            };
            parsed
                .unwrap_or_else(|_| panic!("RUSTFLOW_SANITIZE_SEED must be an integer, got {t:?}"))
        });
        let iters = match std::env::var("RUSTFLOW_SANITIZE_ITERS") {
            Ok(s) => s.trim().parse().unwrap_or(self.iters),
            Err(_) => self.iters,
        };
        let cfg = ExecCfg {
            preemption_bound: None,
            max_steps: self.max_steps,
            pct: Some(PctCfg {
                change_points: self.change_points,
                avg_steps: self.avg_steps,
                streak_limit: 1_000,
            }),
            sanitize: true,
        };
        let mut out = SanitizeOutcome::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..iters {
            let seed = forced_seed.unwrap_or_else(|| splitmix64(self.seed ^ (i + 1)));
            let o = run_once(&f, &cfg, Vec::new(), Some(seed));
            out.schedules += 1;
            out.max_steps = out.max_steps.max(o.steps);
            if o.pruned {
                out.pruned += 1;
            }
            let h = schedule_hash(o.choices.iter().map(|c| c.picked));
            out.trace.push_str(&format!(
                "iter={i} seed={seed:#018x} steps={} schedule_hash={h:#018x} reports={}\n",
                o.steps,
                o.reports.len()
            ));
            let mut fresh = false;
            for r in o.reports {
                if seen.insert(r.clone()) {
                    out.reports
                        .push(format!("{r}\n    replay: RUSTFLOW_SANITIZE_SEED={seed:#x}"));
                    fresh = true;
                }
            }
            if let Some(fail) = o.failure {
                out.failure = Some(fail);
                out.failing_seed = Some(seed);
                break;
            }
            // One finding is enough to fail a gate; keep the budget small.
            if fresh || forced_seed.is_some() {
                break;
            }
        }
        out
    }

    /// [`Sanitizer::run`], panicking with every finding (and its replay
    /// seed) if any detector fired. The clean path prints one stats line.
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) {
        let out = self.run(f);
        let name = &self.name;
        if out.found_anything() {
            let mut msg = format!(
                "rustflow-sanitize[{name}] found problems after {} schedule(s):\n",
                out.schedules
            );
            for r in &out.reports {
                msg.push_str(&format!("  * {r}\n"));
            }
            if let Some(fail) = &out.failure {
                let seed = out.failing_seed.unwrap_or(0);
                msg.push_str(&format!(
                    "  * {fail}\n    replay: RUSTFLOW_SANITIZE_SEED={seed:#x}\n"
                ));
            }
            panic!("{msg}");
        }
        eprintln!(
            "rustflow-sanitize[{name}]: {} schedules clean ({} pruned, max {} steps/schedule)",
            out.schedules, out.pruned, out.max_steps
        );
    }
}
