//! Drop-in atomic types whose every operation is a model scheduling point.
//!
//! Each type wraps the corresponding `std::sync::atomic` type. When the
//! calling thread belongs to a model execution (see [`crate::model`]),
//! operations are routed through the engine: they become recorded
//! schedule/value choices over the modeled modification order. Outside a
//! model (including when the `rustflow_check` cargo feature is enabled but
//! no checker is running — e.g. feature-unified workspace builds), they
//! fall through to the real atomic with the caller's ordering, so behaviour
//! is identical to `std`.
//!
//! Values are modeled as `u64` payloads; the integer/bool/pointer types
//! convert losslessly (two's complement round-trip for signed values).

use crate::engine;
use std::sync::atomic::Ordering;

macro_rules! int_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $int:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $int) -> $name {
                $name { inner: <$std>::new(v) }
            }

            #[inline]
            fn addr(&self) -> usize {
                self as *const _ as usize
            }

            #[inline]
            fn init(&self) -> u64 {
                // In a model the inner value is never written, so this is
                // the construction-time initial value.
                self.inner.load(Ordering::Relaxed) as u64
            }

            /// Loads the value.
            pub fn load(&self, ord: Ordering) -> $int {
                match engine::current() {
                    None => self.inner.load(ord),
                    Some((rt, me)) => {
                        engine::atomic_load(&rt, me, self.addr(), self.init(), ord) as $int
                    }
                }
            }

            /// Stores a value.
            pub fn store(&self, val: $int, ord: Ordering) {
                match engine::current() {
                    None => self.inner.store(val, ord),
                    Some((rt, me)) => {
                        engine::atomic_store(&rt, me, self.addr(), self.init(), val as u64, ord)
                    }
                }
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, val: $int, ord: Ordering) -> $int {
                match engine::current() {
                    None => self.inner.swap(val, ord),
                    Some((rt, me)) => engine::atomic_rmw(
                        &rt,
                        me,
                        self.addr(),
                        self.init(),
                        ord,
                        |_| val as u64,
                    ) as $int,
                }
            }

            /// Adds to the value, returning the previous one.
            pub fn fetch_add(&self, val: $int, ord: Ordering) -> $int {
                match engine::current() {
                    None => self.inner.fetch_add(val, ord),
                    Some((rt, me)) => engine::atomic_rmw(
                        &rt,
                        me,
                        self.addr(),
                        self.init(),
                        ord,
                        |old| (old as $int).wrapping_add(val) as u64,
                    ) as $int,
                }
            }

            /// Subtracts from the value, returning the previous one.
            pub fn fetch_sub(&self, val: $int, ord: Ordering) -> $int {
                match engine::current() {
                    None => self.inner.fetch_sub(val, ord),
                    Some((rt, me)) => engine::atomic_rmw(
                        &rt,
                        me,
                        self.addr(),
                        self.init(),
                        ord,
                        |old| (old as $int).wrapping_sub(val) as u64,
                    ) as $int,
                }
            }

            /// Strong compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                match engine::current() {
                    None => self.inner.compare_exchange(current, new, success, failure),
                    Some((rt, me)) => engine::atomic_cas(
                        &rt,
                        me,
                        self.addr(),
                        self.init(),
                        current as u64,
                        new as u64,
                        success,
                        failure,
                    )
                    .map(|v| v as $int)
                    .map_err(|v| v as $int),
                }
            }

            /// Weak compare-exchange. The model never fails spuriously (a
            /// spurious failure only adds retry schedules, never new
            /// behaviours, since every caller loops).
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                match engine::current() {
                    None => self
                        .inner
                        .compare_exchange_weak(current, new, success, failure),
                    Some((rt, me)) => engine::atomic_cas(
                        &rt,
                        me,
                        self.addr(),
                        self.init(),
                        current as u64,
                        new as u64,
                        success,
                        failure,
                    )
                    .map(|v| v as $int)
                    .map_err(|v| v as $int),
                }
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                if let Some((rt, _)) = engine::current() {
                    engine::atomic_retire(&rt, self.addr());
                }
            }
        }
    };
}

int_atomic!(
    /// Model-aware `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
int_atomic!(
    /// Model-aware `AtomicIsize`.
    AtomicIsize,
    std::sync::atomic::AtomicIsize,
    isize
);
int_atomic!(
    /// Model-aware `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);

/// Model-aware `AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    #[inline]
    fn init(&self) -> u64 {
        self.inner.load(Ordering::Relaxed) as u64
    }

    /// Loads the value.
    pub fn load(&self, ord: Ordering) -> bool {
        match engine::current() {
            None => self.inner.load(ord),
            Some((rt, me)) => engine::atomic_load(&rt, me, self.addr(), self.init(), ord) != 0,
        }
    }

    /// Stores a value.
    pub fn store(&self, val: bool, ord: Ordering) {
        match engine::current() {
            None => self.inner.store(val, ord),
            Some((rt, me)) => {
                engine::atomic_store(&rt, me, self.addr(), self.init(), val as u64, ord)
            }
        }
    }

    /// Swaps the value, returning the previous one.
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match engine::current() {
            None => self.inner.swap(val, ord),
            Some((rt, me)) => {
                engine::atomic_rmw(&rt, me, self.addr(), self.init(), ord, |_| val as u64) != 0
            }
        }
    }
}

impl Drop for AtomicBool {
    fn drop(&mut self) {
        if let Some((rt, _)) = engine::current() {
            engine::atomic_retire(&rt, self.addr());
        }
    }
}

/// Model-aware `AtomicPtr`.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer.
    pub const fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    #[inline]
    fn init(&self) -> u64 {
        self.inner.load(Ordering::Relaxed) as usize as u64
    }

    /// Loads the pointer.
    pub fn load(&self, ord: Ordering) -> *mut T {
        match engine::current() {
            None => self.inner.load(ord),
            Some((rt, me)) => {
                engine::atomic_load(&rt, me, self.addr(), self.init(), ord) as usize as *mut T
            }
        }
    }

    /// Stores a pointer.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        match engine::current() {
            None => self.inner.store(p, ord),
            Some((rt, me)) => {
                engine::atomic_store(&rt, me, self.addr(), self.init(), p as usize as u64, ord)
            }
        }
    }

    /// Swaps the pointer, returning the previous one.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match engine::current() {
            None => self.inner.swap(p, ord),
            Some((rt, me)) => engine::atomic_rmw(&rt, me, self.addr(), self.init(), ord, |_| {
                p as usize as u64
            }) as usize as *mut T,
        }
    }
}

impl<T> Drop for AtomicPtr<T> {
    fn drop(&mut self) {
        if let Some((rt, _)) = engine::current() {
            engine::atomic_retire(&rt, self.addr());
        }
    }
}

/// Model-aware memory fence.
pub fn fence(ord: Ordering) {
    match engine::current() {
        None => std::sync::atomic::fence(ord),
        Some((rt, me)) => engine::atomic_fence(&rt, me, ord),
    }
}
