//! An OpenMP-`task depend`-style runtime — the faithful stand-in for the
//! paper's OpenMP 4.5 baseline on the micro-benchmarks and the DNN
//! experiment (Listing 4 of the paper).
//!
//! OpenMP's task-dependency model works like this: a single thread (the
//! `#pragma omp single` block) creates tasks **in sequential program
//! order**; each task declares `depend(in: ...)` / `depend(out: ...)`
//! lists of *data addresses*; the runtime hashes every address to find
//! the last writer (and, for an `out`, the readers since), wires the
//! resulting edges, and releases tasks whose predecessors finished. This
//! module reproduces that machinery — including the costs the paper
//! attributes to it: serialized submission, per-clause hash lookups, and
//! per-task dependency bookkeeping.
//!
//! ```
//! use tf_baselines::{Pool, TaskDepRegion};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let pool = Pool::new(2);
//! let region = TaskDepRegion::new(&pool);
//! let order = Arc::new(AtomicUsize::new(0));
//! let (o1, o2) = (Arc::clone(&order), Arc::clone(&order));
//! region.task(&[], &[7], move || { o1.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst).unwrap(); });
//! region.task(&[7], &[], move || { o2.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst).unwrap(); });
//! region.wait_all();
//! assert_eq!(order.load(Ordering::SeqCst), 2);
//! ```

use crate::pool::{Pool, PoolHandle};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type Body = Box<dyn FnOnce() + Send + 'static>;

/// Scheduling state of one submitted task.
struct TaskState {
    /// `None` once dispatched.
    body: Mutex<Option<Body>>,
    /// Predecessors not yet finished (+1 submission sentinel).
    remaining: AtomicUsize,
    /// Successor task ids to release on completion; `None` once finished
    /// (late edges then resolve immediately).
    successors: Mutex<Option<Vec<usize>>>,
}

/// Per-address dependence bookkeeping (what libgomp keeps in its hash).
#[derive(Default, Clone)]
struct AddressEntry {
    last_writer: Option<usize>,
    readers_since_write: Vec<usize>,
}

struct RegionInner {
    tasks: Mutex<Vec<Arc<TaskState>>>,
    unfinished: AtomicUsize,
    idle: Mutex<()>,
    idle_cv: Condvar,
    pool: PoolHandle,
}

/// One OpenMP-style task region: submit tasks in sequential order with
/// `depend` address lists, then [`TaskDepRegion::wait_all`].
///
/// Submission is intentionally **not** `Sync`: like the `single` block,
/// one thread creates all tasks.
pub struct TaskDepRegion {
    inner: Arc<RegionInner>,
    /// The dependence hash (submission-thread only, like libgomp's since
    /// submission is serialized).
    table: std::cell::RefCell<HashMap<u64, AddressEntry>>,
}

impl TaskDepRegion {
    /// Opens a region over `pool`.
    pub fn new(pool: &Pool) -> TaskDepRegion {
        TaskDepRegion {
            inner: Arc::new(RegionInner {
                tasks: Mutex::new(Vec::new()),
                unfinished: AtomicUsize::new(0),
                idle: Mutex::new(()),
                idle_cv: Condvar::new(),
                pool: pool.handle(),
            }),
            table: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// Creates a task that reads the (abstract) addresses in `ins` and
    /// writes those in `outs` — `#pragma omp task depend(in: ...)
    /// depend(out: ...)`. Dependencies on earlier tasks are derived by
    /// the runtime; tasks must be submitted in an order consistent with
    /// sequential execution (the user's responsibility, as in OpenMP).
    pub fn task(&self, ins: &[u64], outs: &[u64], body: impl FnOnce() + Send + 'static) {
        let inner = &self.inner;
        inner.unfinished.fetch_add(1, Ordering::SeqCst);
        let state = Arc::new(TaskState {
            body: Mutex::new(Some(Box::new(body))),
            // +1 sentinel held until all clauses are resolved.
            remaining: AtomicUsize::new(1),
            successors: Mutex::new(Some(Vec::new())),
        });
        let id = {
            let mut tasks = inner.tasks.lock();
            tasks.push(Arc::clone(&state));
            tasks.len() - 1
        };

        // Resolve clauses through the dependence hash (this serial walk is
        // the per-task cost the OpenMP model pays).
        let mut table = self.table.borrow_mut();
        let mut preds: Vec<usize> = Vec::new();
        for &addr in ins {
            let entry = table.entry(addr).or_default();
            if let Some(w) = entry.last_writer {
                preds.push(w);
            }
            entry.readers_since_write.push(id);
        }
        for &addr in outs {
            let entry = table.entry(addr).or_default();
            // Output dependence: after the last writer...
            if let Some(w) = entry.last_writer {
                preds.push(w);
            }
            // ...and anti-dependence: after every reader since.
            preds.extend(entry.readers_since_write.drain(..).filter(|&r| r != id));
            entry.last_writer = Some(id);
        }
        preds.sort_unstable();
        preds.dedup();

        // Wire edges to unfinished predecessors.
        let tasks = inner.tasks.lock();
        for &p in &preds {
            let mut succ = tasks[p].successors.lock();
            if let Some(list) = succ.as_mut() {
                list.push(id);
                state.remaining.fetch_add(1, Ordering::SeqCst);
            } // else: predecessor already finished — no edge needed.
        }
        drop(tasks);

        // Drop the submission sentinel; dispatch if ready.
        if state.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            dispatch(inner, id);
        }
    }

    /// Blocks until every submitted task has finished (`taskwait` /
    /// end of the parallel region).
    pub fn wait_all(&self) {
        let inner = &self.inner;
        let mut guard = inner.idle.lock();
        while inner.unfinished.load(Ordering::SeqCst) != 0 {
            inner.idle_cv.wait(&mut guard);
        }
    }

    /// Number of tasks submitted so far.
    pub fn num_tasks(&self) -> usize {
        self.inner.tasks.lock().len()
    }
}

/// Submits task `id`'s body to the pool.
fn dispatch(inner: &Arc<RegionInner>, id: usize) {
    let inner2 = Arc::clone(inner);
    inner.pool.submit(move || {
        let state = Arc::clone(&inner2.tasks.lock()[id]);
        let body = state.body.lock().take().expect("task dispatched twice");
        body();
        // Mark finished and release successors.
        let successors = state.successors.lock().take().expect("task finished twice");
        for s in successors {
            let succ = Arc::clone(&inner2.tasks.lock()[s]);
            if succ.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                dispatch(&inner2, s);
            }
        }
        if inner2.unfinished.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = inner2.idle.lock();
            inner2.idle_cv.notify_all();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn listing4_figure2_graph() {
        // The paper's Figure 2 expressed exactly like Listing 4: one
        // abstract address per dependence variable (a0_a1, b0_b1, ...).
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = Pool::new(4);
        let region = TaskDepRegion::new(&pool);
        let mk = |name: &'static str| {
            let order = Arc::clone(&order);
            move || order.lock().push(name)
        };
        // addresses: 1=a0_a1, 2=a1_a2, 3=a1_b2, 4=a2_a3, 5=b0_b1, 6=b1_b2,
        // 7=b1_a2, 8=b2_a3
        region.task(&[], &[1], mk("a0"));
        region.task(&[], &[5], mk("b0"));
        region.task(&[1], &[2, 3], mk("a1"));
        region.task(&[5], &[6, 7], mk("b1"));
        region.task(&[2, 7], &[4], mk("a2"));
        region.task(&[3, 6], &[8], mk("b2"));
        region.task(&[4, 8], &[], mk("a3"));
        region.wait_all();
        let order = order.lock();
        assert_eq!(order.len(), 7);
        let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
        assert!(pos("a0") < pos("a1") && pos("b0") < pos("b1"));
        assert!(pos("a1") < pos("a2") && pos("b1") < pos("a2"));
        assert!(pos("a1") < pos("b2") && pos("b1") < pos("b2"));
        assert!(pos("a2") < pos("a3") && pos("b2") < pos("a3"));
    }

    #[test]
    fn anti_dependence_orders_reader_before_next_writer() {
        // r reads addr; w then writes addr -> w must run after r.
        let trace = Arc::new(Mutex::new(Vec::new()));
        let pool = Pool::new(4);
        let region = TaskDepRegion::new(&pool);
        let t1 = Arc::clone(&trace);
        region.task(&[], &[1], move || t1.lock().push("w0"));
        for i in 0..4 {
            let t = Arc::clone(&trace);
            region.task(&[1], &[], move || {
                t.lock().push(["r0", "r1", "r2", "r3"][i]);
            });
        }
        let t2 = Arc::clone(&trace);
        region.task(&[], &[1], move || t2.lock().push("w1"));
        region.wait_all();
        let trace = trace.lock();
        let w1 = trace.iter().position(|&x| x == "w1").unwrap();
        for r in ["r0", "r1", "r2", "r3"] {
            assert!(trace.iter().position(|&x| x == r).unwrap() < w1);
        }
        assert_eq!(trace.iter().position(|&x| x == "w0").unwrap(), 0);
    }

    #[test]
    fn independent_tasks_all_run() {
        let count = Arc::new(AtomicU64::new(0));
        let pool = Pool::new(4);
        let region = TaskDepRegion::new(&pool);
        for i in 0..200u64 {
            let c = Arc::clone(&count);
            region.task(&[], &[i + 1000], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        region.wait_all();
        assert_eq!(count.load(Ordering::SeqCst), 200);
        assert_eq!(region.num_tasks(), 200);
    }

    #[test]
    fn long_chain_serializes() {
        let value = Arc::new(AtomicU64::new(0));
        let pool = Pool::new(4);
        let region = TaskDepRegion::new(&pool);
        for i in 0..500u64 {
            let v = Arc::clone(&value);
            region.task(&[1], &[1], move || {
                // inout chain: must observe exactly i.
                assert_eq!(v.swap(i + 1, Ordering::SeqCst), i);
            });
        }
        region.wait_all();
        assert_eq!(value.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn region_reusable_after_wait() {
        let count = Arc::new(AtomicU64::new(0));
        let pool = Pool::new(2);
        let region = TaskDepRegion::new(&pool);
        let c = Arc::clone(&count);
        region.task(&[], &[1], move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        region.wait_all();
        let c = Arc::clone(&count);
        region.task(&[1], &[2], move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        region.wait_all();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
