//! # tf-baselines — the comparison schedulers of the Cpp-Taskflow paper
//!
//! The paper (IPDPS 2019) evaluates Cpp-Taskflow against two
//! industrial-strength baselines that we rebuild here as faithful Rust
//! substrates:
//!
//! * [`levelized`] — the levelize-and-barrier discipline of **OpenTimer
//!   v1** (§II-D: "levelize the circuit graph into a topological order,
//!   and apply parallel_for level by level"), the v1 engine of
//!   Figures 9 and 10.
//! * [`flowgraph`] — the **Intel TBB FlowGraph** stand-in: explicit
//!   `continue_node`s, `make_edge`, `try_put` sources and per-message heap
//!   traffic over a central-queue pool (Listings 5/8).
//! * [`taskdep`] — the **OpenMP 4.5 `task depend`** runtime model:
//!   sequential-order task submission with per-clause address hashing and
//!   anti-dependence tracking (Listing 4), used for the micro-benchmark
//!   and DNN "OpenMP" columns;
//! * [`dag::Dag::run_sequential`] — the sequential baseline of
//!   Tables I and III.
//!
//! All of them execute the same scheduler-agnostic [`dag::Dag`]
//! description, so a benchmark builds one workload and measures every
//! scheduler on identical task graphs.

#![warn(missing_docs)]

pub mod dag;
pub mod flowgraph;
pub mod levelized;
pub mod pool;
pub mod taskdep;

pub use dag::Dag;
pub use flowgraph::{ContinueMsg, ContinueNode, FlowGraph, FlowGraphBuilder};
pub use levelized::{run_levelized, LevelizedRunner};
pub use pool::{Pool, PoolHandle};
pub use taskdep::TaskDepRegion;
