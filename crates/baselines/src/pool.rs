//! A conventional shared thread pool with one central queue.
//!
//! Both baseline schedulers run on this pool:
//!
//! * [`crate::levelized`] uses [`Pool::parallel_for`] — a blocking,
//!   barrier-terminated parallel loop, the way an OpenMP `parallel for`
//!   region executes one level of a levelized DAG;
//! * [`crate::flowgraph`] uses [`Pool::submit`] — fire-and-forget jobs,
//!   the way TBB dispatches flow-graph node bodies.
//!
//! The central mutex-protected queue is deliberately *not* work-stealing:
//! the contrast with rustflow's per-worker deques is part of what the
//! paper's micro-benchmarks measure.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    /// Jobs submitted but not yet finished.
    pending: AtomicUsize,
    idle: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size thread pool with a central FIFO queue.
pub struct Pool {
    inner: Arc<PoolInner>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
}

impl Pool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let threads = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("baseline-pool-{i}"))
                    .spawn(move || pool_worker(&inner))
                    .expect("failed to spawn pool thread")
            })
            .collect();
        Pool {
            inner,
            threads,
            workers,
        }
    }

    /// Number of pool threads.
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a job for execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.inner.submit(Box::new(job));
    }

    /// A cloneable submission handle, usable from inside pool jobs.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.inner.idle.lock();
        while self.inner.pending.load(Ordering::SeqCst) != 0 {
            self.inner.idle_cv.wait(&mut guard);
        }
    }

    /// Number of jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.inner.pending.load(Ordering::SeqCst)
    }

    /// Runs `f(i)` for every `i < n` and blocks until all iterations
    /// finish — one OpenMP-style `parallel for` region with dynamic
    /// chunk scheduling. The calling thread participates (like the OpenMP
    /// master thread).
    pub fn parallel_for(&self, n: usize, chunk: usize, f: Arc<dyn Fn(usize) + Send + Sync>) {
        if n == 0 {
            return;
        }
        let chunk = chunk.max(1);
        let next = Arc::new(AtomicUsize::new(0));
        let helpers = self.workers.min(n.div_ceil(chunk)).saturating_sub(0);
        let latch = Arc::new(Latch::new(helpers));
        for _ in 0..helpers {
            let f = Arc::clone(&f);
            let next = Arc::clone(&next);
            let latch = Arc::clone(&latch);
            self.submit(move || {
                chunk_loop(n, chunk, &next, &*f);
                latch.count_down();
            });
        }
        // Master participates.
        chunk_loop(n, chunk, &next, &*f);
        latch.wait();
    }
}

impl PoolInner {
    fn submit(&self, job: Job) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push_back(job);
        self.available.notify_one();
    }
}

/// A cloneable handle that can enqueue jobs (including from within jobs).
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<PoolInner>,
}

impl PoolHandle {
    /// Enqueues a job for execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.inner.submit(Box::new(job));
    }
}

fn chunk_loop(n: usize, chunk: usize, next: &AtomicUsize, f: &(dyn Fn(usize) + Send + Sync)) {
    loop {
        let lo = next.fetch_add(chunk, Ordering::Relaxed);
        if lo >= n {
            break;
        }
        let hi = (lo + chunk).min(n);
        for i in lo..hi {
            f(i);
        }
    }
}

fn pool_worker(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                inner.available.wait(&mut queue);
            }
        };
        job();
        if inner.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = inner.idle.lock();
            inner.idle_cv.notify_all();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.wait_idle();
        self.inner.stop.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A simple countdown latch.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            cv: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining != 0 {
            self.cv.wait(&mut remaining);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_wait_idle() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn parallel_for_covers_all_indices_once() {
        let pool = Pool::new(3);
        let hits: Arc<Vec<AtomicUsize>> = Arc::new((0..500).map(|_| AtomicUsize::new(0)).collect());
        let h = Arc::clone(&hits);
        pool.parallel_for(
            500,
            7,
            Arc::new(move |i| {
                h[i].fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_zero_items() {
        let pool = Pool::new(2);
        pool.parallel_for(0, 4, Arc::new(|_| panic!("must not run")));
    }

    #[test]
    fn jobs_can_submit_jobs() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        // Note: nested submission via raw pointer dance is avoided by
        // cloning an Arc of the pool's inner through a channel-free trick:
        // we just submit from outside after the first completes.
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_worker_pool_progresses() {
        let pool = Pool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.parallel_for(
            64,
            8,
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }
}
