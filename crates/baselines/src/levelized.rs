//! The levelized DAG executor — the "OpenMP task dependency clause"
//! stand-in (§II-D of the paper).
//!
//! "The most common approach, including industrial implementations, is to
//! levelize the circuit graph into a topological order, and apply
//! language-specific `parallel_for` level by level." OpenMP's static task
//! annotations force exactly this execution discipline: every level is a
//! barrier-synchronized parallel region, and the level structure must be
//! (re)computed from the task annotations before running — which is also
//! what OpenTimer v1 pays for on every incremental iteration.
//!
//! This module reproduces that discipline faithfully:
//!
//! 1. levelize the DAG (longest-path-from-source levels);
//! 2. for each level, run a blocking [`Pool::parallel_for`] over its
//!    nodes; the implicit barrier at the end of each level is the cost the
//!    paper's Figures 7/9/10 measure against rustflow's dataflow-driven
//!    scheduling.

use crate::dag::Dag;
use crate::pool::Pool;
use std::sync::Arc;

/// Runs `dag` level by level on `pool`, blocking until done.
///
/// `chunk` is the dynamic-scheduling chunk size inside each level
/// (0 = auto: `level_size / (4 * workers)`).
///
/// Panics if the DAG has a cycle.
pub fn run_levelized(dag: &Dag, pool: &Pool, chunk: usize) {
    let levels = dag.levelize().expect("run_levelized: graph has a cycle");
    run_levels(dag, pool, &levels, chunk)
}

/// Runs a pre-levelized DAG (levelization hoisted out of the timed
/// region when a caller wants to measure pure execution).
pub fn run_levels(dag: &Dag, pool: &Pool, levels: &[Vec<u32>], chunk: usize) {
    // One shared payload per level keeps per-level setup small, as an
    // OpenMP implementation's parallel region would.
    for level in levels {
        if level.is_empty() {
            continue;
        }
        let chunk = if chunk > 0 {
            chunk
        } else {
            (level.len() / (4 * pool.num_workers())).max(1)
        };
        // Clone the level's node list into the closure; the Dag itself is
        // borrowed only for the duration of this blocking call, but the
        // pool requires 'static jobs, so we clone the Arc payloads.
        let payloads: Arc<Vec<crate::dag::Payload>> =
            Arc::new(level.iter().map(|&v| dag.payload_of(v as usize)).collect());
        let body = {
            let payloads = Arc::clone(&payloads);
            Arc::new(move |i: usize| {
                (payloads[i])();
            })
        };
        pool.parallel_for(level.len(), chunk, body);
    }
}

/// Convenience wrapper: levelize once, then run the same DAG many times
/// (per-iteration levelization excluded). Used by benchmarks that separate
/// construction from execution cost.
pub struct LevelizedRunner {
    levels: Vec<Vec<u32>>,
}

impl LevelizedRunner {
    /// Levelizes `dag`; panics on cycles.
    pub fn new(dag: &Dag) -> LevelizedRunner {
        LevelizedRunner {
            levels: dag.levelize().expect("LevelizedRunner: graph has a cycle"),
        }
    }

    /// Number of levels (the critical-path length + 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Runs the DAG level by level on `pool`.
    pub fn run(&self, dag: &Dag, pool: &Pool, chunk: usize) {
        run_levels(dag, pool, &self.levels, chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Builds a chain interleaved with a wide level to exercise barriers.
    fn chain_and_fan(n: usize) -> (Dag, Arc<Vec<AtomicUsize>>) {
        let stamps: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n + 1).map(|_| AtomicUsize::new(usize::MAX)).collect());
        let clock = Arc::new(AtomicUsize::new(0));
        let mut dag = Dag::new();
        let head = {
            let stamps = Arc::clone(&stamps);
            let clock = Arc::clone(&clock);
            dag.add(move || {
                stamps[0].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            })
        };
        for i in 0..n {
            let stamps = Arc::clone(&stamps);
            let clock = Arc::clone(&clock);
            let v = dag.add(move || {
                stamps[i + 1].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            });
            dag.edge(head, v);
        }
        (dag, stamps)
    }

    #[test]
    fn levelized_respects_dependencies() {
        let (dag, stamps) = chain_and_fan(50);
        let pool = Pool::new(4);
        run_levelized(&dag, &pool, 4);
        let head_stamp = stamps[0].load(Ordering::SeqCst);
        assert_eq!(head_stamp, 0);
        for s in stamps.iter().skip(1) {
            let v = s.load(Ordering::SeqCst);
            assert_ne!(v, usize::MAX, "task did not run");
            assert!(v > head_stamp);
        }
    }

    #[test]
    fn runner_reuses_levels() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut dag = Dag::new();
        let a = {
            let c = Arc::clone(&counter);
            dag.add(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
        };
        let b = {
            let c = Arc::clone(&counter);
            dag.add(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
        };
        dag.edge(a, b);
        let pool = Pool::new(2);
        let runner = LevelizedRunner::new(&dag);
        assert_eq!(runner.num_levels(), 2);
        runner.run(&dag, &pool, 1);
        runner.run(&dag, &pool, 1);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn empty_dag_is_fine() {
        let dag = Dag::new();
        let pool = Pool::new(2);
        run_levelized(&dag, &pool, 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_panics() {
        let mut dag = Dag::new();
        let a = dag.add(|| {});
        let b = dag.add(|| {});
        dag.edge(a, b);
        dag.edge(b, a);
        let pool = Pool::new(1);
        run_levelized(&dag, &pool, 1);
    }
}
