//! A TBB-FlowGraph-style message-passing executor — the "Intel TBB
//! FlowGraph" stand-in of the paper's evaluation.
//!
//! The programming model mirrors `tbb::flow`: a [`FlowGraph`] holds
//! `continue_node`s; `make_edge` wires them; execution starts only when
//! the user explicitly `try_put`s a continue message into each source
//! node; `wait_for_all` blocks until no messages are in flight
//! (Listings 5 and 8 of the paper show how verbose this gets).
//!
//! The execution machinery reproduces the *costs* the paper attributes to
//! TBB's flow-graph model:
//!
//! * every edge delivery is a heap-allocated continue message consumed by
//!   the target node (TBB's dynamic task allocation per message),
//! * every node keeps an atomic received-message counter checked against
//!   its predecessor count,
//! * node bodies are dispatched through a shared central-queue pool
//!   ([`crate::pool::Pool`]) rather than per-worker deques.

use crate::dag::Dag;
use crate::pool::Pool;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The nominal message flowing along edges; heap-allocated per delivery to
/// model TBB's per-message task traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct ContinueMsg;

type Body = Arc<dyn Fn(&ContinueMsg) + Send + Sync + 'static>;

struct NodeState {
    body: Body,
    successors: Vec<u32>,
    /// Messages required before the body fires (TBB: predecessor count).
    required: AtomicUsize,
    /// Messages received so far in the current wave.
    received: AtomicUsize,
}

struct GraphInner {
    nodes: Vec<NodeState>,
    /// Node executions scheduled but not yet finished.
    in_flight: AtomicUsize,
    idle: Mutex<()>,
    idle_cv: Condvar,
}

/// A handle to a `continue_node`, returned by
/// [`FlowGraphBuilder::continue_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContinueNode(u32);

/// Builder phase of a flow graph; call [`FlowGraphBuilder::build`] to
/// freeze it for execution.
#[derive(Default)]
pub struct FlowGraphBuilder {
    bodies: Vec<Body>,
    successors: Vec<Vec<u32>>,
    required: Vec<usize>,
}

impl FlowGraphBuilder {
    /// Creates an empty graph builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `continue_node` executing `body` once all its predecessor
    /// messages arrived.
    pub fn continue_node(
        &mut self,
        body: impl Fn(&ContinueMsg) + Send + Sync + 'static,
    ) -> ContinueNode {
        let id = self.bodies.len() as u32;
        self.bodies.push(Arc::new(body));
        self.successors.push(Vec::new());
        self.required.push(0);
        ContinueNode(id)
    }

    /// Wires `from` to `to`: when `from`'s body finishes, it sends a
    /// continue message to `to`.
    pub fn make_edge(&mut self, from: ContinueNode, to: ContinueNode) {
        self.successors[from.0 as usize].push(to.0);
        self.required[to.0 as usize] += 1;
    }

    /// Freezes the graph for execution.
    pub fn build(self) -> FlowGraph {
        let nodes = self
            .bodies
            .into_iter()
            .zip(self.successors)
            .zip(self.required)
            .map(|((body, successors), required)| NodeState {
                body,
                successors,
                required: AtomicUsize::new(required),
                received: AtomicUsize::new(0),
            })
            .collect();
        FlowGraph {
            inner: Arc::new(GraphInner {
                nodes,
                in_flight: AtomicUsize::new(0),
                idle: Mutex::new(()),
                idle_cv: Condvar::new(),
            }),
        }
    }

    /// Builds a flow graph straight from a scheduler-agnostic [`Dag`],
    /// returning the graph and its source nodes (which the caller must
    /// `try_put`, as TBB requires).
    pub fn from_dag(dag: &Dag) -> (FlowGraph, Vec<ContinueNode>) {
        let mut builder = FlowGraphBuilder::new();
        let handles: Vec<ContinueNode> = (0..dag.len())
            .map(|v| {
                let payload = dag.payload_of(v);
                builder.continue_node(move |_msg| payload())
            })
            .collect();
        for v in 0..dag.len() {
            for &s in dag.successors_of(v) {
                builder.make_edge(handles[v], handles[s as usize]);
            }
        }
        let sources: Vec<ContinueNode> = (0..dag.len())
            .filter(|&v| dag.in_degree_of(v) == 0)
            .map(|v| handles[v])
            .collect();
        (builder.build(), sources)
    }
}

/// An executable flow graph (the TBB `graph` object).
pub struct FlowGraph {
    inner: Arc<GraphInner>,
}

impl FlowGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.nodes.is_empty()
    }

    /// Injects a continue message into `node` — TBB's explicit source
    /// activation (`node.try_put(continue_msg())`).
    pub fn try_put(&self, node: ContinueNode, pool: &Pool) {
        // The injected message, like edge messages, is heap traffic.
        let msg = Box::new(ContinueMsg);
        deliver(&self.inner, node.0, msg, &pool.handle());
    }

    /// Blocks until no node executions or messages are in flight.
    /// Nodes that never received all their messages simply do not run
    /// (TBB semantics).
    pub fn wait_for_all(&self) {
        let mut guard = self.inner.idle.lock();
        while self.inner.in_flight.load(Ordering::SeqCst) != 0 {
            self.inner.idle_cv.wait(&mut guard);
        }
    }

    /// Re-arms every node's message counter so the same graph can run
    /// again (our benches reuse graphs; TBB does the equivalent reset
    /// internally per wave).
    pub fn reset(&self) {
        for n in &self.inner.nodes {
            n.received.store(0, Ordering::Relaxed);
        }
    }
}

/// Delivers one continue message to `node`; fires the body when the
/// required count is reached.
fn deliver(
    inner: &Arc<GraphInner>,
    node: u32,
    msg: Box<ContinueMsg>,
    pool: &crate::pool::PoolHandle,
) {
    let state = &inner.nodes[node as usize];
    let required = state.required.load(Ordering::Relaxed);
    let got = state.received.fetch_add(1, Ordering::AcqRel) + 1;
    // Consume the message (models TBB freeing the task carrying it).
    drop(msg);
    if got < required.max(1) {
        return;
    }
    // All inputs arrived: dispatch the body to the pool.
    inner.in_flight.fetch_add(1, Ordering::SeqCst);
    let inner2 = Arc::clone(inner);
    // Successor fan-out re-submits through a clone of the same handle.
    let pool2 = pool.clone();
    pool.submit(move || {
        let state = &inner2.nodes[node as usize];
        (state.body)(&ContinueMsg);
        for &succ in &state.successors {
            let msg = Box::new(ContinueMsg);
            deliver(&inner2, succ, msg, &pool2);
        }
        if inner2.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = inner2.idle.lock();
            inner2.idle_cv.notify_all();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing5_static_graph() {
        // The paper's Figure 2 graph, written TBB-style (Listing 5).
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g = FlowGraphBuilder::new();
        let mk = |name: &'static str, order: &Arc<Mutex<Vec<&'static str>>>| {
            let order = Arc::clone(order);
            move |_: &ContinueMsg| order.lock().push(name)
        };
        let a0 = g.continue_node(mk("a0", &order));
        let a1 = g.continue_node(mk("a1", &order));
        let a2 = g.continue_node(mk("a2", &order));
        let a3 = g.continue_node(mk("a3", &order));
        let b0 = g.continue_node(mk("b0", &order));
        let b1 = g.continue_node(mk("b1", &order));
        let b2 = g.continue_node(mk("b2", &order));
        g.make_edge(a0, a1);
        g.make_edge(a1, a2);
        g.make_edge(a1, b2);
        g.make_edge(a2, a3);
        g.make_edge(b0, b1);
        g.make_edge(b1, b2);
        g.make_edge(b1, a2);
        g.make_edge(b2, a3);
        let g = g.build();
        let pool = Pool::new(4);
        g.try_put(a0, &pool);
        g.try_put(b0, &pool);
        g.wait_for_all();
        let order = order.lock();
        assert_eq!(order.len(), 7);
        let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
        assert!(pos("a0") < pos("a1"));
        assert!(pos("a1") < pos("a2") && pos("b1") < pos("a2"));
        assert!(pos("a1") < pos("b2") && pos("b1") < pos("b2"));
        assert!(pos("a2") < pos("a3") && pos("b2") < pos("a3"));
        assert!(pos("b0") < pos("b1"));
    }

    #[test]
    fn unsourced_nodes_do_not_run() {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut g = FlowGraphBuilder::new();
        let r1 = Arc::clone(&ran);
        let a = g.continue_node(move |_| {
            r1.fetch_add(1, Ordering::SeqCst);
        });
        let r2 = Arc::clone(&ran);
        let _b = g.continue_node(move |_| {
            r2.fetch_add(100, Ordering::SeqCst);
        });
        let g = g.build();
        let pool = Pool::new(2);
        g.try_put(a, &pool);
        g.wait_for_all();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn from_dag_runs_everything() {
        let count = Arc::new(AtomicUsize::new(0));
        let mut dag = Dag::new();
        let mut prev = None;
        for _ in 0..64 {
            let c = Arc::clone(&count);
            let v = dag.add(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            if let Some(p) = prev {
                dag.edge(p, v);
            }
            prev = Some(v);
        }
        let (g, sources) = FlowGraphBuilder::from_dag(&dag);
        assert_eq!(sources.len(), 1);
        let pool = Pool::new(3);
        for s in &sources {
            g.try_put(*s, &pool);
        }
        g.wait_for_all();
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn reset_allows_rerun() {
        let count = Arc::new(AtomicUsize::new(0));
        let mut dag = Dag::new();
        let c = Arc::clone(&count);
        let a = dag.add(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let c = Arc::clone(&count);
        let b = dag.add(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        dag.edge(a, b);
        let (g, sources) = FlowGraphBuilder::from_dag(&dag);
        let pool = Pool::new(2);
        for _ in 0..3 {
            for s in &sources {
                g.try_put(*s, &pool);
            }
            g.wait_for_all();
            g.reset();
        }
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }
}
