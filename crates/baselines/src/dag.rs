//! A scheduler-agnostic task DAG description.
//!
//! Benchmark workloads (wavefront, graph traversal, timing graphs, DNN
//! pipelines) build one [`Dag`] and hand it to each scheduler under test:
//! the sequential executor here, the levelized executor
//! ([`crate::levelized`]), the TBB-style flow graph
//! ([`crate::flowgraph::FlowGraphBuilder::from_dag`]), or rustflow (adapter in
//! the `tf-workloads` crate). Payloads are `Arc<dyn Fn()>` so one built
//! DAG can be executed repeatedly and by multiple schedulers.

use std::sync::Arc;

/// A task payload: shareable, repeatable.
pub type Payload = Arc<dyn Fn() + Send + Sync + 'static>;

/// A directed acyclic task graph with closure payloads.
#[derive(Clone, Default)]
pub struct Dag {
    pub(crate) payloads: Vec<Payload>,
    pub(crate) successors: Vec<Vec<u32>>,
    pub(crate) in_degree: Vec<u32>,
    pub(crate) num_edges: usize,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Dag {
        Dag::default()
    }

    /// Creates an empty DAG with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Dag {
        Dag {
            payloads: Vec::with_capacity(n),
            successors: Vec::with_capacity(n),
            in_degree: Vec::with_capacity(n),
            num_edges: 0,
        }
    }

    /// Adds a task, returning its id.
    pub fn add(&mut self, f: impl Fn() + Send + Sync + 'static) -> usize {
        self.add_payload(Arc::new(f))
    }

    /// Adds a task from an existing shared payload.
    pub fn add_payload(&mut self, f: Payload) -> usize {
        let id = self.payloads.len();
        self.payloads.push(f);
        self.successors.push(Vec::new());
        self.in_degree.push(0);
        id
    }

    /// Adds a dependency edge: `from` runs before `to`.
    pub fn edge(&mut self, from: usize, to: usize) {
        assert!(from < self.len() && to < self.len(), "edge out of range");
        self.successors[from].push(to as u32);
        self.in_degree[to] += 1;
        self.num_edges += 1;
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// `true` when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Successor ids of node `v`.
    pub fn successors_of(&self, v: usize) -> &[u32] {
        &self.successors[v]
    }

    /// In-degree of node `v`.
    pub fn in_degree_of(&self, v: usize) -> u32 {
        self.in_degree[v]
    }

    /// Runs payload `v` (used by scheduler adapters).
    pub fn invoke(&self, v: usize) {
        (self.payloads[v])();
    }

    /// Shared payload of node `v`.
    pub fn payload_of(&self, v: usize) -> Payload {
        Arc::clone(&self.payloads[v])
    }

    /// Kahn topological sort. Returns `None` if the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<u32>> {
        let mut degree = self.in_degree.clone();
        let mut order: Vec<u32> = Vec::with_capacity(self.len());
        let mut frontier: Vec<u32> = (0..self.len() as u32)
            .filter(|&v| degree[v as usize] == 0)
            .collect();
        while let Some(v) = frontier.pop() {
            order.push(v);
            for &s in &self.successors[v as usize] {
                degree[s as usize] -= 1;
                if degree[s as usize] == 0 {
                    frontier.push(s);
                }
            }
        }
        (order.len() == self.len()).then_some(order)
    }

    /// Partitions the nodes into dependency levels: level `k` holds every
    /// node whose longest path from a source has length `k`. All nodes in
    /// one level are mutually independent — this is "levelize the circuit
    /// graph into a topological order and apply parallel_for level by
    /// level" (§II-D of the paper). Returns `None` on a cycle.
    pub fn levelize(&self) -> Option<Vec<Vec<u32>>> {
        let order = self.topological_order()?;
        let mut level = vec![0u32; self.len()];
        let mut max_level = 0;
        for &v in &order {
            let lv = level[v as usize];
            for &s in &self.successors[v as usize] {
                if level[s as usize] < lv + 1 {
                    level[s as usize] = lv + 1;
                    max_level = max_level.max(lv + 1);
                }
            }
        }
        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
        for v in 0..self.len() as u32 {
            levels[level[v as usize] as usize].push(v);
        }
        Some(levels)
    }

    /// Executes the whole DAG on the calling thread in topological order —
    /// the sequential baseline of Tables I and III.
    pub fn run_sequential(&self) {
        let order = self
            .topological_order()
            .expect("run_sequential: graph has a cycle");
        for v in order {
            self.invoke(v as usize);
        }
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dag")
            .field("nodes", &self.len())
            .field("edges", &self.num_edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn diamond() -> (Dag, Arc<AtomicUsize>) {
        // a -> b, a -> c, b -> d, c -> d ; payloads record order bits.
        let seen = Arc::new(AtomicUsize::new(0));
        let mut dag = Dag::new();
        for bit in 0..4 {
            let seen = Arc::clone(&seen);
            dag.add(move || {
                seen.fetch_or(1 << bit, Ordering::SeqCst);
            });
        }
        dag.edge(0, 1);
        dag.edge(0, 2);
        dag.edge(1, 3);
        dag.edge(2, 3);
        (dag, seen)
    }

    #[test]
    fn sequential_runs_everything() {
        let (dag, seen) = diamond();
        dag.run_sequential();
        assert_eq!(seen.load(Ordering::SeqCst), 0b1111);
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.num_edges(), 4);
    }

    #[test]
    fn topological_order_respects_edges() {
        let (dag, _) = diamond();
        let order = dag.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                pos[v as usize] = i;
            }
            pos
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let mut dag = Dag::new();
        let a = dag.add(|| {});
        let b = dag.add(|| {});
        dag.edge(a, b);
        dag.edge(b, a);
        assert!(dag.topological_order().is_none());
        assert!(dag.levelize().is_none());
    }

    #[test]
    fn levelize_diamond() {
        let (dag, _) = diamond();
        let levels = dag.levelize().unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![0]);
        let mut mid = levels[1].clone();
        mid.sort_unstable();
        assert_eq!(mid, vec![1, 2]);
        assert_eq!(levels[2], vec![3]);
    }

    #[test]
    fn levelize_empty() {
        let dag = Dag::new();
        assert_eq!(dag.levelize().unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "edge out of range")]
    fn edge_bounds_checked() {
        let mut dag = Dag::new();
        dag.add(|| {});
        dag.edge(0, 5);
    }
}
