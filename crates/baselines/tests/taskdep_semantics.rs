//! Property test of the OpenMP-`task depend` runtime model: for any
//! random program of tasks with random in/out address sets, any two tasks
//! that *conflict* (share an address that at least one writes) must
//! execute in submission order — the sequential-consistency guarantee the
//! OpenMP spec gives `depend` clauses.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tf_baselines::{Pool, TaskDepRegion};

#[derive(Debug, Clone)]
struct TaskSpec {
    ins: Vec<u64>,
    outs: Vec<u64>,
}

fn arb_program() -> impl Strategy<Value = Vec<TaskSpec>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u64..6, 0..3),
            proptest::collection::vec(0u64..6, 0..2),
        )
            .prop_map(|(ins, outs)| TaskSpec { ins, outs }),
        1..25,
    )
}

fn conflicts(a: &TaskSpec, b: &TaskSpec) -> bool {
    let writes = |t: &TaskSpec, addr: u64| t.outs.contains(&addr);
    let touches = |t: &TaskSpec, addr: u64| t.ins.contains(&addr) || t.outs.contains(&addr);
    for addr in 0..6u64 {
        if touches(a, addr) && touches(b, addr) && (writes(a, addr) || writes(b, addr)) {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conflicting_tasks_run_in_submission_order(program in arb_program(), workers in 1usize..5) {
        let pool = Pool::new(workers);
        let region = TaskDepRegion::new(&pool);
        let clock = Arc::new(AtomicUsize::new(0));
        let stamps: Vec<Arc<AtomicUsize>> = (0..program.len())
            .map(|_| Arc::new(AtomicUsize::new(0)))
            .collect();
        for (i, spec) in program.iter().enumerate() {
            let clock = Arc::clone(&clock);
            let stamp = Arc::clone(&stamps[i]);
            region.task(&spec.ins, &spec.outs, move || {
                stamp.store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            });
        }
        region.wait_all();
        let s: Vec<usize> = stamps.iter().map(|x| x.load(Ordering::SeqCst)).collect();
        for (i, x) in s.iter().enumerate() {
            prop_assert!(*x > 0, "task {} never ran", i);
        }
        for i in 0..program.len() {
            for j in (i + 1)..program.len() {
                if conflicts(&program[i], &program[j]) {
                    prop_assert!(
                        s[i] < s[j],
                        "conflicting tasks {} and {} ran out of order ({} !< {})",
                        i, j, s[i], s[j]
                    );
                }
            }
        }
    }
}
