//! # tf-metrics — software-cost measurement (SLOCCount / Lizard / COCOMO)
//!
//! The paper quantifies programmability with three tools: SLOCCount
//! (physical LOC and COCOMO cost estimation), Lizard (cyclomatic
//! complexity), and wall-clock development time. This crate reimplements
//! the first two for Rust sources with the same definitions, so the
//! Table I / II / III harnesses can measure *our* implementations the way
//! the paper measured theirs:
//!
//! * [`loc`] — physical SLOC (non-blank, non-comment lines);
//! * [`cyclomatic`] — McCabe complexity per function (`1 +` decisions);
//! * [`cocomo`] — SLOCCount's organic-mode COCOMO (verified to reproduce
//!   the paper's Table II Effort/Dev/Cost numbers from its LOC counts);
//! * [`report`] — per-implementation rollups.

#![warn(missing_docs)]

pub mod cocomo;
pub mod cyclomatic;
pub mod loc;
pub mod report;
mod strip;

pub use cocomo::{estimate, estimate_paper, CocomoEstimate};
pub use cyclomatic::{analyze, ComplexityReport, FunctionComplexity};
pub use loc::{count_sloc, count_sloc_many};
pub use report::SoftwareCost;
