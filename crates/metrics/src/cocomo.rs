//! The basic COCOMO cost model in SLOCCount's "organic" configuration,
//! used by the paper for Table II's Effort / Dev / Cost rows.
//!
//! SLOCCount's defaults (which reproduce the paper's numbers exactly):
//!
//! * effort (person-months) = 2.4 · KLOC^1.05
//! * schedule (months)      = 2.5 · effort^0.38
//! * developers             = effort / schedule
//! * cost                   = person-years · salary · overhead(2.4)
//!
//! Check against Table II: 9,123 LOC → effort 24.5 pm = **2.04 py**,
//! schedule 8.4 months, **2.90 devs**, cost 2.04 · $56,286 · 2.4 ≈
//! **$275,556** (the paper prints $275,287; the delta is rounding in
//! their intermediate figures).

/// COCOMO organic-mode estimate for a code size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CocomoEstimate {
    /// Source lines of code the estimate is based on.
    pub sloc: usize,
    /// Development effort in person-months.
    pub effort_person_months: f64,
    /// Development effort in person-years (the paper's "Effort").
    pub effort_person_years: f64,
    /// Schedule estimate in months.
    pub schedule_months: f64,
    /// Estimated average number of developers (the paper's "Dev").
    pub developers: f64,
    /// Total estimated cost in dollars (the paper's "Cost").
    pub cost_dollars: f64,
}

/// The average annual salary the paper uses ($56,286/year).
pub const PAPER_SALARY: f64 = 56_286.0;

/// SLOCCount's default overhead multiplier.
pub const DEFAULT_OVERHEAD: f64 = 2.4;

/// Computes the organic-mode estimate with a given salary and overhead.
pub fn estimate(sloc: usize, salary: f64, overhead: f64) -> CocomoEstimate {
    let kloc = sloc as f64 / 1000.0;
    let effort_pm = if sloc == 0 {
        0.0
    } else {
        2.4 * kloc.powf(1.05)
    };
    let effort_py = effort_pm / 12.0;
    let schedule = if sloc == 0 {
        0.0
    } else {
        2.5 * effort_pm.powf(0.38)
    };
    let developers = if schedule > 0.0 {
        effort_pm / schedule
    } else {
        0.0
    };
    CocomoEstimate {
        sloc,
        effort_person_months: effort_pm,
        effort_person_years: effort_py,
        schedule_months: schedule,
        developers,
        cost_dollars: effort_py * salary * overhead,
    }
}

/// Organic estimate with the paper's salary and SLOCCount's overhead.
pub fn estimate_paper(sloc: usize) -> CocomoEstimate {
    estimate(sloc, PAPER_SALARY, DEFAULT_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_v1_row() {
        // OpenTimer v1: 9,123 LOC → Effort 2.04 py, Dev 2.90, Cost ≈ $275k.
        let e = estimate_paper(9_123);
        assert!((e.effort_person_years - 2.04).abs() < 0.01, "{e:?}");
        assert!((e.developers - 2.90).abs() < 0.02, "{e:?}");
        assert!(
            (e.cost_dollars - 275_287.0).abs() / 275_287.0 < 0.01,
            "{e:?}"
        );
    }

    #[test]
    fn reproduces_table2_v2_row() {
        // OpenTimer v2: 4,482 LOC → Effort 0.97 py, Dev 1.83*, Cost ≈ $130k.
        // (*paper prints 1.83 via its own schedule rounding; accept 2%.)
        let e = estimate_paper(4_482);
        assert!((e.effort_person_years - 0.97).abs() < 0.01, "{e:?}");
        assert!((e.developers - 1.83).abs() / 1.83 < 0.02, "{e:?}");
        assert!(
            (e.cost_dollars - 130_523.0).abs() / 130_523.0 < 0.01,
            "{e:?}"
        );
    }

    #[test]
    fn zero_sloc_is_all_zero() {
        let e = estimate_paper(0);
        assert_eq!(e.effort_person_months, 0.0);
        assert_eq!(e.cost_dollars, 0.0);
        assert_eq!(e.developers, 0.0);
    }

    #[test]
    fn effort_grows_superlinearly() {
        let a = estimate_paper(10_000).effort_person_months;
        let b = estimate_paper(20_000).effort_person_months;
        assert!(b > 2.0 * a);
    }
}
