//! Physical source-lines-of-code counting — the SLOCCount equivalent used
//! for Tables I, II and III of the paper.
//!
//! SLOCCount counts *physical SLOC*: lines that contain at least one
//! non-whitespace character after comments are removed. We apply the same
//! definition to Rust via the crate's comment/string-aware stripper.

use crate::strip::strip_source;

/// Counts physical SLOC in one source string.
pub fn count_sloc(src: &str) -> usize {
    strip_source(src)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

/// Counts raw lines (including blanks/comments), for reporting context.
pub fn count_raw_lines(src: &str) -> usize {
    src.lines().count()
}

/// SLOC across several sources.
pub fn count_sloc_many<'a>(sources: impl IntoIterator<Item = &'a str>) -> usize {
    sources.into_iter().map(count_sloc).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_excluded() {
        let src = "\n// comment only\nlet x = 1;\n\n/* block\n   spanning */\nlet y = 2;\n";
        assert_eq!(count_sloc(src), 2);
        assert_eq!(count_raw_lines(src), 7);
    }

    #[test]
    fn code_with_trailing_comment_counts() {
        assert_eq!(count_sloc("let x = 1; // note\n"), 1);
    }

    #[test]
    fn empty_source() {
        assert_eq!(count_sloc(""), 0);
    }

    #[test]
    fn many_sums() {
        assert_eq!(count_sloc_many(["let a = 1;", "let b = 2;\nlet c = 3;"]), 3);
    }
}
