//! Comment/string-aware scanning of Rust source.
//!
//! Both the LOC counter (SLOCCount equivalent) and the cyclomatic
//! complexity analyzer (Lizard equivalent) need source text with comments
//! removed and string contents neutralized, so that `// if x` or
//! `"while"` never count as code or decisions. This module performs that
//! normalization with a small state machine handling Rust's line comments,
//! nested block comments, char/string literals, and raw strings.

/// Scanner state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
    Char,
}

/// Replaces comments with spaces and string/char literal *contents* with
/// spaces (keeping the quotes), preserving line structure exactly.
pub fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match b {
                b'/' if next == Some(b'/') => {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'/' if next == Some(b'*') => {
                    state = State::BlockComment { depth: 1 };
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                }
                b'r' if matches!(next, Some(b'"') | Some(b'#'))
                    && is_raw_string_start(bytes, i) =>
                {
                    let hashes = count_hashes(bytes, i + 1);
                    state = State::RawStr { hashes };
                    out.push(b'"');
                    out.extend(std::iter::repeat_n(b' ', hashes as usize + 1));
                    i += 1 + hashes as usize + 1; // r + hashes + quote
                }
                // Distinguish char literals ('a') from lifetimes ('a);
                // lifetimes fall through to the plain-byte arm below.
                b'\'' if is_char_literal(bytes, i) => {
                    state = State::Char;
                    out.push(b'\'');
                    i += 1;
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment { depth } => {
                if b == b'/' && next == Some(b'*') {
                    state = State::BlockComment { depth: depth + 1 };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'*' && next == Some(b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && next.is_some() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    state = State::Code;
                    out.push(b'"');
                    out.extend(std::iter::repeat_n(b' ', hashes as usize));
                    i += 1 + hashes as usize;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && next.is_some() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    String::from_utf8(out).expect("strip preserves UTF-8 line structure for ASCII control bytes")
}

fn count_hashes(bytes: &[u8], mut i: usize) -> u32 {
    let mut h = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        h += 1;
        i += 1;
    }
    h
}

/// `r` at position i starts a raw string iff it is followed by `#*"`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Avoid matching identifiers ending in r (e.g. `var"` is not valid
    // anyway) — require a non-identifier char before.
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_ascii_alphanumeric() || p == b'_' {
            return false;
        }
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    let mut j = i + 1;
    let mut h = 0;
    while j < bytes.len() && bytes[j] == b'#' && h < hashes {
        j += 1;
        h += 1;
    }
    h == hashes
}

/// `'` starts a char literal (vs a lifetime) if the closing quote appears
/// within a few bytes: `'x'`, `'\n'`, `'\u{1F600}'`.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    let n = bytes.len();
    if i + 2 < n && bytes[i + 1] == b'\\' {
        return true; // escaped char literal
    }
    if i + 2 < n && bytes[i + 2] == b'\'' {
        return true; // 'x'
    }
    // Multi-byte UTF-8 char literal: find a quote before any separator.
    let mut j = i + 1;
    let mut len = 0;
    while j < n && len < 6 {
        if bytes[j] == b'\'' {
            return len > 0;
        }
        if bytes[j] == b' ' || bytes[j] == b'\n' || bytes[j] == b'>' || bytes[j] == b',' {
            return false;
        }
        j += 1;
        len += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let s = strip_source("let x = 1; // if while\nlet y = 2;");
        assert!(!s.contains("if"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip_source("a /* outer /* inner */ still */ b");
        assert!(s.contains('a'));
        assert!(s.contains('b'));
        assert!(!s.contains("inner"));
        assert!(!s.contains("still"));
    }

    #[test]
    fn neutralizes_strings_keeping_quotes() {
        let s = strip_source(r#"let s = "if x { while }";"#);
        assert!(!s.contains("if"));
        assert!(!s.contains("while"));
        assert!(s.contains("\""));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quotes\" and // if\"#; let t = 5;";
        let s = strip_source(src);
        assert!(!s.contains("if"));
        assert!(s.contains("let t = 5;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_stripped() {
        let s = strip_source("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
        assert!(!s.contains('y'));
    }

    #[test]
    fn escaped_quote_in_string() {
        let s = strip_source(r#"let s = "a\"b if"; let k = 1;"#);
        assert!(!s.contains("if"));
        assert!(s.contains("let k = 1;"));
    }

    #[test]
    fn preserves_line_count() {
        let src = "a\n/* x\ny\nz */\nb\n";
        assert_eq!(strip_source(src).lines().count(), src.lines().count());
    }
}
