//! Whole-implementation software-cost reports (one row of Table I/II/III).

use crate::cocomo::{estimate_paper, CocomoEstimate};
use crate::cyclomatic::{analyze, ComplexityReport};
use crate::loc::count_sloc;
use std::path::{Path, PathBuf};

/// Software-cost measurements of one implementation (a set of sources).
#[derive(Debug, Clone)]
pub struct SoftwareCost {
    /// Label (e.g. "rustflow", "OpenMP-style").
    pub label: String,
    /// Physical source lines of code (SLOCCount definition).
    pub sloc: usize,
    /// Per-function cyclomatic complexities.
    pub complexity: ComplexityReport,
}

impl SoftwareCost {
    /// Measures a set of in-memory sources.
    pub fn measure<'a>(
        label: impl Into<String>,
        sources: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let mut sloc = 0;
        let mut complexity = ComplexityReport::default();
        for src in sources {
            sloc += count_sloc(src);
            complexity.merge(analyze(src));
        }
        SoftwareCost {
            label: label.into(),
            sloc,
            complexity,
        }
    }

    /// Measures files on disk (panics on unreadable files — the harness
    /// points this at sources in the repository).
    pub fn measure_files(
        label: impl Into<String>,
        paths: impl IntoIterator<Item = PathBuf>,
    ) -> Self {
        let sources: Vec<String> = paths
            .into_iter()
            .map(|p| {
                std::fs::read_to_string(&p)
                    .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()))
            })
            .collect();
        Self::measure(label, sources.iter().map(|s| s.as_str()))
    }

    /// Recursively measures all `.rs` files under `dir`.
    pub fn measure_dir(label: impl Into<String>, dir: &Path) -> Self {
        let mut files = Vec::new();
        collect_rs_files(dir, &mut files);
        files.sort();
        Self::measure_files(label, files)
    }

    /// Total cyclomatic complexity (Tables I and III's "CC").
    pub fn cc_total(&self) -> usize {
        self.complexity.total()
    }

    /// Maximum single-function complexity (Table II's "MCC").
    pub fn cc_max(&self) -> usize {
        self.complexity.max()
    }

    /// COCOMO organic estimate with the paper's parameters.
    pub fn cocomo(&self) -> CocomoEstimate {
        estimate_paper(self.sloc)
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_sums_across_sources() {
        let a = "fn one() { if true {} }\n";
        let b = "fn two() {}\nfn three() { while false {} }\n";
        let cost = SoftwareCost::measure("demo", [a, b]);
        assert_eq!(cost.label, "demo");
        assert_eq!(cost.sloc, 3);
        assert_eq!(cost.complexity.num_functions(), 3);
        assert_eq!(cost.cc_total(), 2 + 1 + 2); // 1+1, 1, 1+1
        assert_eq!(cost.cc_max(), 2);
    }

    #[test]
    fn cocomo_attached() {
        let cost = SoftwareCost::measure("demo", ["fn f() {}"]);
        assert_eq!(cost.cocomo().sloc, 1);
    }

    #[test]
    fn measure_dir_reads_this_crate() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let cost = SoftwareCost::measure_dir("self", &dir);
        assert!(cost.sloc > 100, "sloc = {}", cost.sloc);
        assert!(cost.complexity.num_functions() > 10);
    }
}
