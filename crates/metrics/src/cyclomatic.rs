//! Cyclomatic complexity — the Lizard equivalent used for Tables I, II
//! and III of the paper.
//!
//! Lizard computes McCabe complexity per function as `1 + decision
//! points`. For Rust we count: `if`, `else if` (counted by its `if`),
//! `while`, `for`, `loop`, each `match` arm beyond the first, `&&`, `||`,
//! and the `?` operator. Functions are located by `fn` items and delimited
//! by brace matching on comment/string-stripped source.

use crate::strip::strip_source;

/// Complexity of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionComplexity {
    /// Function name (best effort).
    pub name: String,
    /// McCabe cyclomatic complexity (≥ 1).
    pub complexity: usize,
    /// 1-based line where the function starts.
    pub line: usize,
}

/// Per-file complexity summary.
#[derive(Debug, Clone, Default)]
pub struct ComplexityReport {
    /// Every function found.
    pub functions: Vec<FunctionComplexity>,
}

impl ComplexityReport {
    /// Maximum single-function complexity (the paper's Table II "MCC"),
    /// 0 when no functions exist.
    pub fn max(&self) -> usize {
        self.functions
            .iter()
            .map(|f| f.complexity)
            .max()
            .unwrap_or(0)
    }

    /// Total complexity across functions (the per-implementation "CC" of
    /// Tables I and III).
    pub fn total(&self) -> usize {
        self.functions.iter().map(|f| f.complexity).sum()
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: ComplexityReport) {
        self.functions.extend(other.functions);
    }
}

/// Analyzes one Rust source string.
pub fn analyze(src: &str) -> ComplexityReport {
    let stripped = strip_source(src);
    let mut report = ComplexityReport::default();
    let bytes = stripped.as_bytes();
    let mut i = 0;
    while let Some(fn_pos) = find_fn(&stripped, i) {
        let name = fn_name(&stripped, fn_pos);
        let line = stripped[..fn_pos].matches('\n').count() + 1;
        // Find the opening brace of the body (skip the signature; `;`
        // before `{` means a trait method declaration without a body).
        let mut j = fn_pos;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let close = match_brace(bytes, open);
        let body = &stripped[open..close];
        report.functions.push(FunctionComplexity {
            name,
            complexity: 1 + decision_points(body),
            line,
        });
        // Continue after the opening brace so nested `fn` items (closures
        // aside, Rust allows nested fns) are found too.
        i = open + 1;
    }
    report
}

/// Finds the next `fn` keyword at a token boundary.
fn find_fn(s: &str, from: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = from;
    while let Some(pos) = s[i..].find("fn") {
        let at = i + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after_ok = at + 2 >= bytes.len() || !is_ident_char(bytes[at + 2]);
        if before_ok && after_ok {
            return Some(at);
        }
        i = at + 2;
    }
    None
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn fn_name(s: &str, fn_pos: usize) -> String {
    s[fn_pos + 2..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Index one past the matching `}` for the `{` at `open`.
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Counts decision points in stripped source.
fn decision_points(body: &str) -> usize {
    let mut count = 0;
    // Keyword decisions.
    for kw in ["if", "while", "for", "loop"] {
        count += keyword_occurrences(body, kw);
    }
    // Match arms: each `=>` is an arm; arms beyond the first in a match
    // add a path. Counting every `=>` and subtracting the number of
    // `match` keywords approximates "arms - 1" per match.
    let arms = body.matches("=>").count();
    let matches_kw = keyword_occurrences(body, "match");
    count += arms.saturating_sub(matches_kw);
    // Short-circuit operators.
    count += body.matches("&&").count();
    count += body.matches("||").count();
    // The ? operator: question marks in stripped code (strings removed)
    // that are not generics `?Sized`.
    count += body
        .as_bytes()
        .iter()
        .enumerate()
        .filter(|&(i, &b)| {
            b == b'?'
                && body.as_bytes().get(i + 1).is_none_or(|&n| {
                    !n.is_ascii_alphabetic() // excludes ?Sized
                })
        })
        .count();
    count
}

fn keyword_occurrences(s: &str, kw: &str) -> usize {
    let bytes = s.as_bytes();
    let mut i = 0;
    let mut count = 0;
    while let Some(pos) = s[i..].find(kw) {
        let at = i + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + kw.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        // Exclude `else if`? No: Lizard counts `else if` as a decision.
        // Exclude `if let` double counting? `if let` is one decision: the
        // `if` matches once, fine.
        if before_ok && after_ok {
            count += 1;
        }
        i = at + kw.len();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function_is_one() {
        let r = analyze("fn f() { let x = 1; let y = x + 2; }");
        assert_eq!(r.num_functions(), 1);
        assert_eq!(r.functions[0].complexity, 1);
        assert_eq!(r.functions[0].name, "f");
    }

    #[test]
    fn branches_add_up() {
        let src = r#"
fn g(a: i32) -> i32 {
    if a > 0 && a < 10 {
        for i in 0..a { let _ = i; }
        a
    } else if a < -5 {
        while a < 0 { break; }
        -a
    } else {
        0
    }
}
"#;
        let r = analyze(src);
        // if (1) + && (1) + for (1) + else-if's if (1) + while (1) = 5 → CC 6
        assert_eq!(r.functions[0].complexity, 6);
    }

    #[test]
    fn match_arms_counted() {
        let src = "fn h(x: u8) -> u8 { match x { 0 => 1, 1 => 2, _ => 3 } }";
        let r = analyze(src);
        // 3 arms - 1 match = 2 decisions → CC 3
        assert_eq!(r.functions[0].complexity, 3);
    }

    #[test]
    fn multiple_functions_and_max_total() {
        let src = "fn a() { if true {} }\nfn b() {}\n";
        let r = analyze(src);
        assert_eq!(r.num_functions(), 2);
        assert_eq!(r.max(), 2);
        assert_eq!(r.total(), 3);
    }

    #[test]
    fn comments_and_strings_ignored() {
        let src = r#"
fn c() {
    // if while for && ||
    let s = "if || &&";
    let _ = s;
}
"#;
        let r = analyze(src);
        assert_eq!(r.functions[0].complexity, 1);
    }

    #[test]
    fn question_operator_counts() {
        let src = "fn d() -> Option<u8> { let x = Some(1)?; Some(x) }";
        let r = analyze(src);
        assert_eq!(r.functions[0].complexity, 2);
    }

    #[test]
    fn trait_method_without_body_skipped() {
        let src = "trait T { fn sig(&self); fn with_body(&self) { if true {} } }";
        let r = analyze(src);
        assert_eq!(r.num_functions(), 1);
        assert_eq!(r.functions[0].name, "with_body");
    }
}
