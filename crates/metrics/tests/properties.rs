//! Property tests of the software-cost analyzers: the invariants a
//! SLOCCount/Lizard equivalent must satisfy on arbitrary inputs.

use proptest::prelude::*;
use tf_metrics::{analyze, count_sloc, estimate_paper};

/// Generates a small synthetic Rust function with a known decision count.
fn gen_function(name: &str, ifs: usize, whiles: usize, ands: usize) -> String {
    let mut body = String::new();
    for i in 0..ifs {
        body.push_str(&format!("    if x > {i} {{ y += 1; }}\n"));
    }
    for _ in 0..whiles {
        body.push_str("    while y > 100 { y -= 1; }\n");
    }
    for _ in 0..ands {
        body.push_str("    let _ = x > 1 && y > 2;\n");
    }
    format!("fn {name}(x: i64, mut y: i64) -> i64 {{\n{body}    y\n}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn comment_lines_never_count(ifs in 0usize..5, comments in 0usize..10) {
        let base = gen_function("f", ifs, 0, 0);
        let base_sloc = count_sloc(&base);
        let mut commented = String::new();
        for line in base.lines() {
            commented.push_str(line);
            commented.push('\n');
            for c in 0..comments {
                commented.push_str(&format!("// filler comment {c} with if while && tokens\n"));
            }
        }
        prop_assert_eq!(count_sloc(&commented), base_sloc);
    }

    #[test]
    fn blank_lines_never_count(blanks in 0usize..20) {
        let base = gen_function("g", 2, 1, 0);
        let padded = base.replace('\n', &format!("\n{}", "\n".repeat(blanks)));
        prop_assert_eq!(count_sloc(&padded), count_sloc(&base));
    }

    #[test]
    fn complexity_counts_decisions_exactly(ifs in 0usize..6, whiles in 0usize..4, ands in 0usize..4) {
        let src = gen_function("h", ifs, whiles, ands);
        let report = analyze(&src);
        prop_assert_eq!(report.num_functions(), 1);
        // each `while y > 100 { y -= 1; }` has no extra decisions; each
        // `&&` line adds exactly one.
        prop_assert_eq!(report.functions[0].complexity, 1 + ifs + whiles + ands);
    }

    #[test]
    fn string_contents_never_add_decisions(junk in "[a-z if while&|]{0,40}") {
        let src = format!("fn k() {{ let _s = \"{junk}\"; }}\n");
        let report = analyze(&src);
        prop_assert_eq!(report.functions[0].complexity, 1);
    }

    #[test]
    fn cocomo_is_monotonic(a in 0usize..200_000, b in 0usize..200_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let e_lo = estimate_paper(lo);
        let e_hi = estimate_paper(hi);
        prop_assert!(e_lo.effort_person_months <= e_hi.effort_person_months);
        prop_assert!(e_lo.cost_dollars <= e_hi.cost_dollars);
        prop_assert!(e_lo.schedule_months <= e_hi.schedule_months);
    }

    #[test]
    fn sloc_of_concatenation_is_sum(n1 in 0usize..8, n2 in 0usize..8) {
        let a = gen_function("a", n1, 0, 0);
        let b = gen_function("b", n2, 0, 0);
        prop_assert_eq!(
            count_sloc(&format!("{a}{b}")),
            count_sloc(&a) + count_sloc(&b)
        );
    }

    #[test]
    fn multiple_functions_found(n in 1usize..10) {
        let src: String = (0..n).map(|i| gen_function(&format!("f{i}"), 1, 0, 0)).collect();
        let report = analyze(&src);
        prop_assert_eq!(report.num_functions(), n);
        prop_assert_eq!(report.total(), n * 2);
        prop_assert_eq!(report.max(), 2);
    }
}
