//! # tf-timer — an OpenTimer-like VLSI static timing analyzer (§II, §IV-B)
//!
//! The paper's motivating application and its largest experiment: a static
//! timing analyzer whose incremental core was rewritten from OpenMP
//! levelization (v1) to Cpp-Taskflow task graphs (v2). This crate rebuilds
//! that system end to end:
//!
//! * [`circuit`] — gate-level netlists with sequential (DFF) cut points;
//! * [`delay`] — an NLDM-style (slew, load)-linear cell library;
//! * [`analysis`] — arrival/slew propagation, slack, critical paths, and
//!   affected-region discovery for incremental timing;
//! * [`engine`] — the three engines Figures 9 and 10 compare:
//!   sequential, v1 (levelize + barrier-per-level, the OpenMP discipline),
//!   and v2 (rustflow task dependency graphs);
//! * [`generate`] — seeded synthetic designs at the paper's benchmark
//!   scales (tv80, vga_lcd, netcard, leon3mp) plus the random design
//!   modifiers that drive the incremental-timing experiments.

#![warn(missing_docs)]

pub mod analysis;
pub mod circuit;
pub mod delay;
pub mod engine;
pub mod engine_v1;
pub mod engine_v2;
pub mod generate;

pub use circuit::{Circuit, Gate, GateId, GateKind};
pub use engine::{Engine, Timer};
pub use generate::{CircuitSpec, DesignModifier};
