//! Timing state and per-gate propagation.
//!
//! Arrival times and slews live in atomic `f64`-bit cells so that many
//! worker threads can compute different gates of one update concurrently:
//! a gate's task writes only its own cells and reads only its fanins',
//! whose tasks are ordered before it by the scheduler (taskflow edges,
//! level barriers, or sequential order). The Release/Acquire pairs below
//! belt-and-suspenders that ordering; the real happens-before edges come
//! from the schedulers' join counters and barriers.

use crate::circuit::{Circuit, GateId, GateKind};
use crate::delay::{gate_delay, gate_slew, DFF_SETUP, PRIMARY_INPUT_SLEW};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Clock-network slew assumed at every DFF clock pin (ps).
const CLOCK_SLEW: f64 = 5.0;

/// Shared timing analyzer state (see [`crate::Timer`] for the public
/// wrapper).
pub struct TimerInner {
    /// The design under analysis.
    pub circuit: Circuit,
    /// Arrival time at each gate's output (f64 bits).
    arrival: Vec<AtomicU64>,
    /// Transition time (slew) at each gate's output (f64 bits).
    slew: Vec<AtomicU64>,
    /// Required arrival time at each gate's output (f64 bits; +inf when
    /// unconstrained). Filled by the backward pass.
    required: Vec<AtomicU64>,
    /// Region-membership stamps (see [`TimerInner::new_epoch`]).
    stamp: Vec<AtomicU32>,
    /// Position of each gate within the current region (valid only when
    /// its stamp matches the current epoch). Replaces per-update hash
    /// maps in the engines.
    region_pos: Vec<AtomicU32>,
    epoch: AtomicU32,
}

impl TimerInner {
    pub(crate) fn new(circuit: Circuit) -> Arc<TimerInner> {
        let n = circuit.num_gates();
        Arc::new(TimerInner {
            circuit,
            arrival: (0..n).map(|_| AtomicU64::new(0)).collect(),
            slew: (0..n).map(|_| AtomicU64::new(0)).collect(),
            required: (0..n)
                .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
                .collect(),
            stamp: (0..n).map(|_| AtomicU32::new(0)).collect(),
            region_pos: (0..n).map(|_| AtomicU32::new(0)).collect(),
            epoch: AtomicU32::new(0),
        })
    }

    /// Arrival time at gate `g`'s output (ps).
    #[inline]
    pub fn arrival(&self, g: GateId) -> f64 {
        f64::from_bits(self.arrival[g as usize].load(Ordering::Acquire))
    }

    /// Output slew at gate `g` (ps).
    #[inline]
    pub fn slew(&self, g: GateId) -> f64 {
        f64::from_bits(self.slew[g as usize].load(Ordering::Acquire))
    }

    #[inline]
    fn set(&self, g: GateId, arrival: f64, slew: f64) {
        self.arrival[g as usize].store(arrival.to_bits(), Ordering::Release);
        self.slew[g as usize].store(slew.to_bits(), Ordering::Release);
    }

    /// Recomputes arrival and slew of one gate from its fanins.
    ///
    /// Thread-safety: callable concurrently for *different* gates as long
    /// as every fanin's task is ordered before this gate's task.
    pub fn compute_gate(&self, g: GateId) {
        let gate = &self.circuit.gates[g as usize];
        match gate.kind {
            GateKind::Input => {
                // Port delay grows with the load it drives.
                let d = gate_delay(&self.circuit, g, PRIMARY_INPUT_SLEW);
                let s = gate_slew(&self.circuit, g, PRIMARY_INPUT_SLEW);
                self.set(g, d, s);
            }
            GateKind::Dff => {
                // Launch: clock-to-Q; independent of the D-side fanins.
                let d = gate_delay(&self.circuit, g, CLOCK_SLEW);
                let s = gate_slew(&self.circuit, g, CLOCK_SLEW);
                self.set(g, d, s);
            }
            GateKind::Output => {
                let (arr, slew) = self.worst_fanin(g);
                self.set(g, arr, slew);
            }
            _ => {
                // Per-arc evaluation, as a real STA engine performs: each
                // fanin arc gets its own NLDM lookup with that fanin's
                // slew; the worst (arrival + arc delay) wins and its arc
                // determines the output slew.
                let gate_ref = &self.circuit.gates[g as usize];
                let mut worst_at = f64::NEG_INFINITY;
                let mut worst_slew_in = 0.0;
                for &fi in &gate_ref.fanins {
                    let slew_in = self.slew(fi);
                    let at = self.arrival(fi) + gate_delay(&self.circuit, g, slew_in);
                    if at > worst_at {
                        worst_at = at;
                        worst_slew_in = slew_in;
                    }
                }
                if worst_at == f64::NEG_INFINITY {
                    // Dangling combinational gate with no fanins.
                    worst_at = gate_delay(&self.circuit, g, 0.0);
                }
                let s = gate_slew(&self.circuit, g, worst_slew_in);
                self.set(g, worst_at, s);
            }
        }
    }

    /// Worst (max) fanin arrival and slew.
    fn worst_fanin(&self, g: GateId) -> (f64, f64) {
        let mut arr: f64 = 0.0;
        let mut slew: f64 = 0.0;
        for &fi in &self.circuit.gates[g as usize].fanins {
            arr = arr.max(self.arrival(fi));
            slew = slew.max(self.slew(fi));
        }
        (arr, slew)
    }

    /// Required arrival time at gate `g`'s output (+inf when the
    /// backward pass has not run or the gate is unconstrained).
    #[inline]
    pub fn required(&self, g: GateId) -> f64 {
        f64::from_bits(self.required[g as usize].load(Ordering::Acquire))
    }

    /// Recomputes the required time of one gate from its fanouts — the
    /// backward (required-arrival-time) propagation of a full STA engine.
    ///
    /// A fanout that is a timing endpoint contributes its capture
    /// constraint (clock period, minus setup for a DFF D-pin); a
    /// combinational fanout contributes its own required time minus the
    /// arc delay through it (evaluated at this gate's slew, matching the
    /// forward pass's arc model).
    ///
    /// Thread-safety: callable concurrently for *different* gates as long
    /// as every fanout's backward task is ordered before this gate's.
    pub fn compute_required(&self, g: GateId) {
        use crate::circuit::GateKind;
        use crate::delay::{gate_delay, DFF_SETUP};
        let gate = &self.circuit.gates[g as usize];
        let period = self.circuit.clock_period;
        let mut req = f64::INFINITY;
        if gate.kind == GateKind::Output {
            req = period;
        }
        let slew_here = self.slew(g);
        for &f in &gate.fanouts {
            let fk = self.circuit.gates[f as usize].kind;
            let term = match fk {
                GateKind::Dff => period - DFF_SETUP,
                GateKind::Output => self.required(f),
                _ => self.required(f) - gate_delay(&self.circuit, f, slew_here),
            };
            req = req.min(term);
        }
        self.required[g as usize].store(req.to_bits(), Ordering::Release);
    }

    /// Slack at gate `g`'s output: `required − arrival`. Needs a forward
    /// update and a backward ([`crate::Timer::update_required`]) pass;
    /// +inf for unconstrained gates.
    pub fn gate_slack(&self, g: GateId) -> f64 {
        self.required(g) - self.arrival(g)
    }

    /// Slack of endpoint `e` against the clock period.
    ///
    /// * Primary output: `period − arrival(out)`.
    /// * DFF: setup check on the D side, `period − setup − max fanin
    ///   arrival`.
    ///
    /// Returns `None` for non-endpoints.
    pub fn endpoint_slack(&self, e: GateId) -> Option<f64> {
        let gate = &self.circuit.gates[e as usize];
        match gate.kind {
            GateKind::Output => Some(self.circuit.clock_period - self.arrival(e)),
            GateKind::Dff => {
                let (arr, _) = self.worst_fanin(e);
                Some(self.circuit.clock_period - DFF_SETUP - arr)
            }
            _ => None,
        }
    }

    /// Worst (minimum) slack over all endpoints — the paper's incremental
    /// "timing query".
    pub fn worst_slack(&self) -> f64 {
        let mut worst = f64::INFINITY;
        for e in self.circuit.endpoints() {
            if let Some(s) = self.endpoint_slack(e) {
                worst = worst.min(s);
            }
        }
        worst
    }

    /// The critical path: trace from the worst endpoint backwards through
    /// worst-arrival fanins until a timing source. Returns gate ids from
    /// source to endpoint (Fig. 8's black path).
    pub fn critical_path(&self) -> Vec<GateId> {
        let mut worst: Option<(f64, GateId)> = None;
        for e in self.circuit.endpoints() {
            if let Some(s) = self.endpoint_slack(e) {
                if worst.is_none_or(|(ws, _)| s < ws) {
                    worst = Some((s, e));
                }
            }
        }
        let Some((_, endpoint)) = worst else {
            return Vec::new();
        };
        let mut path = vec![endpoint];
        let mut cur = endpoint;
        loop {
            let gate = &self.circuit.gates[cur as usize];
            // Sources launch paths; stop there (a DFF endpoint still
            // traces through its D fanins, but a DFF reached as a driver
            // terminates the path).
            if gate.kind == GateKind::Input || (gate.kind == GateKind::Dff && cur != endpoint) {
                break;
            }
            let next = gate.fanins.iter().copied().max_by(|&a, &b| {
                self.arrival(a)
                    .partial_cmp(&self.arrival(b))
                    .expect("arrivals are finite")
            });
            match next {
                Some(n) => {
                    path.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }

    // -- region machinery (incremental timing) ----------------------------

    /// Starts a new region epoch, invalidating previous stamps.
    pub(crate) fn new_epoch(&self) -> u32 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    #[inline]
    pub(crate) fn stamp_gate(&self, g: GateId, epoch: u32) {
        self.stamp[g as usize].store(epoch, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn is_stamped(&self, g: GateId, epoch: u32) -> bool {
        self.stamp[g as usize].load(Ordering::Relaxed) == epoch
    }

    /// Index of `g` within the current region (only meaningful when
    /// `is_stamped(g, epoch)` holds).
    #[inline]
    pub(crate) fn region_index(&self, g: GateId) -> usize {
        self.region_pos[g as usize].load(Ordering::Relaxed) as usize
    }

    /// The affected region of a set of modified gates: the forward closure
    /// along fanout edges, cut at timing sources (a DFF's launch arrival
    /// does not depend on its D input). Returned in BFS order; region
    /// membership is stamped with the returned epoch.
    pub(crate) fn forward_region(&self, seeds: &[GateId]) -> (Vec<GateId>, u32) {
        let epoch = self.new_epoch();
        let mut region = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for &s in seeds {
            if !self.is_stamped(s, epoch) {
                self.stamp_gate(s, epoch);
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            self.region_pos[v as usize].store(region.len() as u32, Ordering::Relaxed);
            region.push(v);
            for &f in &self.circuit.gates[v as usize].fanouts {
                if self.circuit.gates[f as usize].kind.is_source() {
                    continue; // D input: launch side unaffected
                }
                if !self.is_stamped(f, epoch) {
                    self.stamp_gate(f, epoch);
                    queue.push_back(f);
                }
            }
        }
        (region, epoch)
    }

    /// In-degree of each region gate counting only in-region fanins
    /// (timing sources take no fanin dependencies).
    pub(crate) fn region_in_degrees(&self, region: &[GateId], epoch: u32) -> Vec<u32> {
        region
            .iter()
            .map(|&v| {
                let gate = &self.circuit.gates[v as usize];
                if gate.kind.is_source() {
                    0
                } else {
                    gate.fanins
                        .iter()
                        .filter(|&&u| self.is_stamped(u, epoch))
                        .count() as u32
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for TimerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerInner")
            .field("gates", &self.circuit.num_gates())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Arc<TimerInner> {
        // inp -> inv -> buf -> out
        let mut c = Circuit::new(500.0);
        let inp = c.add_gate(GateKind::Input, 1.0);
        let inv = c.add_gate(GateKind::Inv, 1.0);
        let buf = c.add_gate(GateKind::Buf, 1.0);
        let out = c.add_gate(GateKind::Output, 1.0);
        c.connect(inp, inv);
        c.connect(inv, buf);
        c.connect(buf, out);
        TimerInner::new(c)
    }

    fn full_sequential(t: &TimerInner) {
        for g in t.circuit.timing_topological_order().unwrap() {
            t.compute_gate(g);
        }
    }

    #[test]
    fn arrivals_increase_along_chain() {
        let t = chain();
        full_sequential(&t);
        assert!(t.arrival(0) > 0.0); // port delay
        assert!(t.arrival(1) > t.arrival(0));
        assert!(t.arrival(2) > t.arrival(1));
        assert_eq!(t.arrival(3), t.arrival(2)); // output port copies
    }

    #[test]
    fn slack_is_period_minus_arrival() {
        let t = chain();
        full_sequential(&t);
        let slack = t.endpoint_slack(3).unwrap();
        assert!((slack - (500.0 - t.arrival(3))).abs() < 1e-9);
        assert_eq!(t.worst_slack(), slack);
        assert_eq!(t.endpoint_slack(1), None);
    }

    #[test]
    fn critical_path_walks_the_chain() {
        let t = chain();
        full_sequential(&t);
        assert_eq!(t.critical_path(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dff_launch_ignores_d_arrival() {
        // inp -> xor(a) -> dff -> out ; dff launch constant.
        let mut c = Circuit::new(500.0);
        let inp = c.add_gate(GateKind::Input, 1.0);
        let inv = c.add_gate(GateKind::Inv, 1.0);
        let dff = c.add_gate(GateKind::Dff, 1.0);
        let out = c.add_gate(GateKind::Output, 1.0);
        c.connect(inp, inv);
        c.connect(inv, dff);
        c.connect(dff, out);
        let t = TimerInner::new(c);
        full_sequential(&t);
        let q_arrival = t.arrival(dff);
        assert!(q_arrival > 0.0);
        // DFF endpoint slack uses the D-side fanin arrival.
        let d_slack = t.endpoint_slack(dff).unwrap();
        assert!((d_slack - (500.0 - DFF_SETUP - t.arrival(inv))).abs() < 1e-9);
    }

    #[test]
    fn forward_region_stops_at_dff() {
        // inp -> inv -> dff -> buf -> out : region from inv must not cross
        // the dff.
        let mut c = Circuit::new(500.0);
        let inp = c.add_gate(GateKind::Input, 1.0);
        let inv = c.add_gate(GateKind::Inv, 1.0);
        let dff = c.add_gate(GateKind::Dff, 1.0);
        let buf = c.add_gate(GateKind::Buf, 1.0);
        let out = c.add_gate(GateKind::Output, 1.0);
        c.connect(inp, inv);
        c.connect(inv, dff);
        c.connect(dff, buf);
        c.connect(buf, out);
        let t = TimerInner::new(c);
        let (region, _) = t.forward_region(&[inv]);
        assert_eq!(region, vec![inv]);
        let (region, _) = t.forward_region(&[buf]);
        assert_eq!(region, vec![buf, out]);
        let _ = (inp, dff);
    }

    #[test]
    fn region_in_degrees_restrict_to_region() {
        let t = chain();
        let (region, epoch) = t.forward_region(&[1]); // inv, buf, out
        let degrees = t.region_in_degrees(&region, epoch);
        assert_eq!(region, vec![1, 2, 3]);
        assert_eq!(degrees, vec![0, 1, 1]); // inv's fanin (inp) is outside
    }
}
