//! The timing engines: OpenTimer v1 (levelized / OpenMP-style) and v2
//! (task-graph / Cpp-Taskflow-style), plus a sequential oracle.
//!
//! Both engines execute the *same* per-gate propagation
//! ([`TimerInner::compute_gate`]) over the *same* affected region; what
//! differs — and what Figures 9 and 10 of the paper measure — is how the
//! region's dependency structure is turned into parallel work:
//!
//! * **v1** levelizes the region (the per-iteration data-structure
//!   reconstruction OpenTimer v1 pays, §IV-B) and runs one
//!   barrier-synchronized `parallel_for` per level;
//! * **v2** builds a rustflow task dependency graph over the region (one
//!   task per gate, one `precede` per in-region edge) and lets
//!   computations "flow naturally with the timing graph".

use crate::analysis::TimerInner;
use crate::circuit::{Circuit, GateId};
use crate::engine_v1::run_levelized;
use crate::engine_v2::{add_region_edges, run_rustflow};
use rustflow::{Executor, Taskflow};
use std::sync::Arc;
use tf_baselines::Pool;

/// Which engine executes a timing update.
pub enum Engine<'a> {
    /// Single-threaded topological propagation (oracle / baseline).
    Sequential,
    /// OpenTimer v1: levelize + barrier-per-level parallel loops.
    V1Levelized(&'a Pool),
    /// OpenTimer v2: rustflow task dependency graph.
    V2Rustflow(&'a Arc<Executor>),
}

/// A static timing analyzer over one design (the OpenTimer equivalent).
///
/// ```
/// use tf_timer::{generate, Engine, Timer};
/// let circuit = generate::CircuitSpec::small_test(200, 7).generate();
/// let timer = Timer::new(circuit);
/// timer.full_update(&Engine::Sequential);
/// assert!(timer.worst_slack().is_finite());
/// ```
pub struct Timer {
    inner: Arc<TimerInner>,
}

impl Timer {
    /// Wraps a circuit for timing analysis. Panics on combinational loops.
    pub fn new(circuit: Circuit) -> Timer {
        assert!(
            circuit.timing_topological_order().is_some(),
            "circuit has a combinational loop"
        );
        Timer {
            inner: TimerInner::new(circuit),
        }
    }

    /// The design under analysis.
    pub fn circuit(&self) -> &Circuit {
        &self.inner.circuit
    }

    /// Recomputes timing for the whole design. Returns the number of
    /// propagation tasks executed.
    pub fn full_update(&self, engine: &Engine<'_>) -> usize {
        let seeds: Vec<GateId> = self.inner.circuit.sources().collect();
        self.incremental_update(&seeds, engine)
    }

    /// Recomputes timing for the affected region of `seeds` (modified
    /// gates plus any gate whose load they changed). Returns the number of
    /// propagation tasks executed — the paper's per-iteration task count.
    pub fn incremental_update(&self, seeds: &[GateId], engine: &Engine<'_>) -> usize {
        let (region, epoch) = self.inner.forward_region(seeds);
        if region.is_empty() {
            return 0;
        }
        match engine {
            Engine::Sequential => run_sequential(&self.inner, &region, epoch),
            Engine::V1Levelized(pool) => run_levelized(&self.inner, &region, epoch, pool),
            Engine::V2Rustflow(executor) => run_rustflow(&self.inner, &region, epoch, executor),
        }
        region.len()
    }

    /// Worst (minimum) slack over all endpoints.
    pub fn worst_slack(&self) -> f64 {
        self.inner.worst_slack()
    }

    /// Slack at one endpoint, `None` for non-endpoints.
    pub fn endpoint_slack(&self, e: GateId) -> Option<f64> {
        self.inner.endpoint_slack(e)
    }

    /// Arrival time at a gate's output.
    pub fn arrival(&self, g: GateId) -> f64 {
        self.inner.arrival(g)
    }

    /// Output slew at a gate.
    pub fn slew(&self, g: GateId) -> f64 {
        self.inner.slew(g)
    }

    /// The critical path, source → endpoint.
    pub fn critical_path(&self) -> Vec<GateId> {
        self.inner.critical_path()
    }

    /// The `k` worst endpoints by slack, worst first — OpenTimer's
    /// `report_timing` query shape.
    pub fn report_timing(&self, k: usize) -> Vec<(GateId, f64)> {
        let mut endpoints: Vec<(GateId, f64)> = self
            .inner
            .circuit
            .endpoints()
            .filter_map(|e| self.inner.endpoint_slack(e).map(|s| (e, s)))
            .collect();
        endpoints.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite slacks"));
        endpoints.truncate(k);
        endpoints
    }

    /// Runs the backward (required-arrival-time) pass over the whole
    /// design, filling per-gate required times so [`Timer::gate_slack`]
    /// becomes meaningful. Requires arrivals to be up to date (run a
    /// forward update first). Returns the number of propagation tasks.
    ///
    /// The backward pass is the reverse of the timing graph: a gate's
    /// task runs after all its fanouts' tasks. Under `V1Levelized` the
    /// forward levels are executed in reverse order; under `V2Rustflow` a
    /// task graph with reversed edges is dispatched.
    pub fn update_required(&self, engine: &Engine<'_>) -> usize {
        let inner = &*self.inner;
        let n = inner.circuit.num_gates();
        match engine {
            Engine::Sequential => {
                let order = inner
                    .circuit
                    .timing_topological_order()
                    .expect("checked at construction");
                for &g in order.iter().rev() {
                    inner.compute_required(g);
                }
            }
            Engine::V1Levelized(pool) => {
                let levels = inner.circuit.levelize().expect("checked at construction");
                for level in levels.iter().rev() {
                    crate::engine_v1::run_level_backward(inner, level, pool);
                }
            }
            Engine::V2Rustflow(executor) => {
                crate::engine_v2::run_required_rustflow(inner, executor);
            }
        }
        n
    }

    /// Slack at any gate's output (`required − arrival`); +inf until
    /// [`Timer::update_required`] has run.
    pub fn gate_slack(&self, g: GateId) -> f64 {
        self.inner.gate_slack(g)
    }

    /// Required arrival time at a gate's output.
    pub fn required(&self, g: GateId) -> f64 {
        self.inner.required(g)
    }

    /// Resizes a gate's drive strength; returns the seed set whose timing
    /// became stale (the gate and its fanins, whose loads changed).
    ///
    /// `&mut self` — design modification is exclusive, like OpenTimer's.
    pub fn resize_gate(&mut self, g: GateId, drive: f32) -> Vec<GateId> {
        let inner = Arc::get_mut(&mut self.inner)
            .expect("resize_gate: updates in flight while modifying the design");
        inner.circuit.gates[g as usize].drive = drive;
        let mut seeds = inner.circuit.gates[g as usize].fanins.clone();
        seeds.push(g);
        seeds
    }

    /// Renders the task dependency graph of one incremental update as
    /// GraphViz DOT (the paper's Figure 8), without executing it.
    pub fn update_task_graph_dot(&self, seeds: &[GateId]) -> String {
        let (region, epoch) = self.inner.forward_region(seeds);
        let tf = Taskflow::new();
        tf.set_name("timing_update");
        let tasks: Vec<rustflow::Task<'_>> = region
            .iter()
            .map(|&g| tf.placeholder().name(format!("g{g}")))
            .collect();
        add_region_edges(&self.inner, &region, epoch, &tasks);
        tf.dump()
    }
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timer")
            .field("gates", &self.inner.circuit.num_gates())
            .field("endpoints", &self.inner.circuit.endpoints().count())
            .finish()
    }
}

/// Sequential propagation in region topological order (Kahn).
fn run_sequential(inner: &TimerInner, region: &[GateId], epoch: u32) {
    let mut degree = inner.region_in_degrees(region, epoch);
    let mut stack: Vec<usize> = (0..region.len()).filter(|&i| degree[i] == 0).collect();
    let mut done = 0;
    while let Some(i) = stack.pop() {
        let g = region[i];
        inner.compute_gate(g);
        done += 1;
        for &f in &inner.circuit.gates[g as usize].fanouts {
            if inner.circuit.gates[f as usize].kind.is_source() {
                continue;
            }
            if inner.is_stamped(f, epoch) {
                let j = inner.region_index(f);
                degree[j] -= 1;
                if degree[j] == 0 {
                    stack.push(j);
                }
            }
        }
    }
    assert_eq!(done, region.len(), "region propagation incomplete (cycle?)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::GateKind;
    use crate::generate::CircuitSpec;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn engines_agree_on_full_update() {
        let circuit = CircuitSpec::small_test(400, 11).generate();
        let seq = Timer::new(circuit.clone());
        seq.full_update(&Engine::Sequential);

        let pool = Pool::new(4);
        let v1 = Timer::new(circuit.clone());
        v1.full_update(&Engine::V1Levelized(&pool));

        let ex = Executor::new(4);
        let v2 = Timer::new(circuit.clone());
        v2.full_update(&Engine::V2Rustflow(&ex));

        for g in 0..circuit.num_gates() as GateId {
            assert!(
                approx(seq.arrival(g), v1.arrival(g)),
                "v1 mismatch at {g}: {} vs {}",
                seq.arrival(g),
                v1.arrival(g)
            );
            assert!(
                approx(seq.arrival(g), v2.arrival(g)),
                "v2 mismatch at {g}: {} vs {}",
                seq.arrival(g),
                v2.arrival(g)
            );
        }
        assert!(approx(seq.worst_slack(), v1.worst_slack()));
        assert!(approx(seq.worst_slack(), v2.worst_slack()));
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let circuit = CircuitSpec::small_test(300, 13).generate();
        let mut timer = Timer::new(circuit.clone());
        timer.full_update(&Engine::Sequential);

        // Pick a mid-circuit combinational gate and resize it.
        let victim = circuit
            .gates
            .iter()
            .position(|g| GateKind::COMBINATIONAL.contains(&g.kind) && !g.fanouts.is_empty())
            .expect("no combinational gate") as GateId;
        let seeds = timer.resize_gate(victim, 2.0);
        let tasks = timer.incremental_update(&seeds, &Engine::Sequential);
        assert!(tasks > 0);

        // Oracle: full recompute on an identical modified circuit.
        let mut oracle_circuit = circuit.clone();
        oracle_circuit.gates[victim as usize].drive = 2.0;
        let oracle = Timer::new(oracle_circuit);
        oracle.full_update(&Engine::Sequential);

        for g in 0..circuit.num_gates() as GateId {
            assert!(
                approx(timer.arrival(g), oracle.arrival(g)),
                "stale arrival at {g}"
            );
        }
        assert!(approx(timer.worst_slack(), oracle.worst_slack()));
    }

    #[test]
    fn incremental_engines_agree() {
        let circuit = CircuitSpec::small_test(500, 17).generate();
        let pool = Pool::new(3);
        let ex = Executor::new(3);

        let mut t_seq = Timer::new(circuit.clone());
        let mut t_v1 = Timer::new(circuit.clone());
        let mut t_v2 = Timer::new(circuit.clone());
        t_seq.full_update(&Engine::Sequential);
        t_v1.full_update(&Engine::V1Levelized(&pool));
        t_v2.full_update(&Engine::V2Rustflow(&ex));

        let victim = circuit
            .gates
            .iter()
            .position(|g| GateKind::COMBINATIONAL.contains(&g.kind) && g.fanouts.len() > 1)
            .expect("no fanout gate") as GateId;
        let s1 = t_seq.resize_gate(victim, 4.0);
        let s2 = t_v1.resize_gate(victim, 4.0);
        let s3 = t_v2.resize_gate(victim, 4.0);
        let n1 = t_seq.incremental_update(&s1, &Engine::Sequential);
        let n2 = t_v1.incremental_update(&s2, &Engine::V1Levelized(&pool));
        let n3 = t_v2.incremental_update(&s3, &Engine::V2Rustflow(&ex));
        assert_eq!(n1, n2);
        assert_eq!(n1, n3);
        for g in 0..circuit.num_gates() as GateId {
            assert!(approx(t_seq.arrival(g), t_v1.arrival(g)), "v1 at {g}");
            assert!(approx(t_seq.arrival(g), t_v2.arrival(g)), "v2 at {g}");
        }
    }

    #[test]
    fn update_task_graph_dot_renders() {
        let circuit = CircuitSpec::small_test(50, 3).generate();
        let timer = Timer::new(circuit);
        let seeds: Vec<GateId> = timer.circuit().sources().take(2).collect();
        let dot = timer.update_task_graph_dot(&seeds);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("g"));
    }

    #[test]
    #[should_panic(expected = "combinational loop")]
    fn loop_rejected() {
        let mut c = Circuit::new(100.0);
        let a = c.add_gate(GateKind::Nand2, 1.0);
        let b = c.add_gate(GateKind::Nand2, 1.0);
        c.connect(a, b);
        c.connect(b, a);
        let _ = Timer::new(c);
    }
}
