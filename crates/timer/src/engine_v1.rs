//! OpenTimer v1: the levelized (OpenMP-style) timing engine.
//!
//! This file, together with the barrier pool it runs on
//! (`tf_baselines::pool`), is the v1 row of Table II: the scheduling
//! machinery a levelized analyzer must implement and maintain itself —
//! per-update level reconstruction and barrier-synchronized level loops.

use crate::analysis::TimerInner;
use crate::circuit::GateId;
use std::sync::Arc;
use tf_baselines::Pool;

/// OpenTimer-v1-style: levelize the region, then one barrier-synchronized
/// parallel loop per level. The levelization happens on every call — the
/// reconstruction cost the paper attributes to the OpenMP approach.
pub(crate) fn run_levelized(inner: &TimerInner, region: &[GateId], epoch: u32, pool: &Pool) {
    // Kahn levelization of the region.
    let degree = inner.region_in_degrees(region, epoch);
    let mut remaining = degree.clone();
    let mut frontier: Vec<usize> = (0..region.len()).filter(|&i| degree[i] == 0).collect();
    let mut levels: Vec<Vec<GateId>> = Vec::new();
    let mut processed = 0;
    while !frontier.is_empty() {
        levels.push(frontier.iter().map(|&i| region[i]).collect());
        let mut next = Vec::new();
        for &i in &frontier {
            processed += 1;
            let g = region[i];
            for &f in &inner.circuit.gates[g as usize].fanouts {
                if inner.circuit.gates[f as usize].kind.is_source() {
                    continue;
                }
                if inner.is_stamped(f, epoch) {
                    let j = inner.region_index(f);
                    remaining[j] -= 1;
                    if remaining[j] == 0 {
                        next.push(j);
                    }
                }
            }
        }
        frontier = next;
    }
    assert_eq!(processed, region.len(), "region levelization incomplete");
    // Execute levels with barriers.
    for lvl in levels {
        if lvl.len() == 1 {
            inner.compute_gate(lvl[0]);
            continue;
        }
        let gates = Arc::new(lvl);
        let chunk = (gates.len() / (4 * pool.num_workers())).max(1);
        // SAFETY-free sharing: TimerInner is reached through a raw pointer
        // wrapped in a Send+Sync newtype because the pool requires 'static
        // jobs while `inner` is borrowed. The pool's parallel_for blocks
        // until all iterations finish, so the borrow outlives every job.
        let shared = SharedTimer(inner as *const TimerInner);
        pool.parallel_for(
            gates.len(),
            chunk,
            Arc::new(move |i| {
                // SAFETY: parallel_for blocks until all iterations finish.
                let timer = unsafe { shared.get() };
                timer.compute_gate(gates[i]);
            }),
        );
    }
}

/// A raw `TimerInner` pointer that promises its referent outlives the
/// blocking parallel call it is used in.
#[derive(Clone, Copy)]
pub(crate) struct SharedTimer(pub(crate) *const TimerInner);
unsafe impl Send for SharedTimer {}
unsafe impl Sync for SharedTimer {}

impl SharedTimer {
    /// # Safety
    /// The referent must still be alive — guaranteed because the call
    /// sites block until every job using the pointer has finished.
    pub(crate) unsafe fn get(&self) -> &TimerInner {
        &*self.0
    }
}

/// Executes one backward level (all gates mutually independent in the
/// reverse graph) with the barrier pool — the v1 engine's required-time
/// pass.
pub(crate) fn run_level_backward(inner: &TimerInner, level: &[GateId], pool: &Pool) {
    if level.len() == 1 {
        inner.compute_required(level[0]);
        return;
    }
    let gates = Arc::new(level.to_vec());
    let chunk = (gates.len() / (4 * pool.num_workers())).max(1);
    let shared = SharedTimer(inner as *const TimerInner);
    pool.parallel_for(
        gates.len(),
        chunk,
        Arc::new(move |i| {
            // SAFETY: parallel_for blocks until all iterations finish.
            let timer = unsafe { shared.get() };
            timer.compute_required(gates[i]);
        }),
    );
}
