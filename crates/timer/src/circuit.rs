//! Gate-level netlist model.
//!
//! The paper's motivating application (§II) is OpenTimer, a static timing
//! analyzer for VLSI designs. We model a design as a gate-level graph:
//! primary inputs, combinational cells, D-flip-flops, and primary outputs,
//! with fanin/fanout edges. Flip-flops cut the graph into combinational
//! cones: a DFF's Q output *launches* a path (arrival starts at its
//! clock-to-Q delay) and its D input *captures* one (a timing endpoint
//! checked against the clock period), so the timing graph is acyclic even
//! when the netlist has sequential feedback.

/// Cell function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input port (timing source, arrival 0).
    Input,
    /// Primary output port (timing endpoint).
    Output,
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// D flip-flop: timing source (CLK→Q launch) *and* endpoint (D setup).
    Dff,
}

impl GateKind {
    /// All combinational 1- and 2-input cells (used by generators and
    /// design modifiers).
    pub const COMBINATIONAL: [GateKind; 7] = [
        GateKind::Inv,
        GateKind::Buf,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
    ];

    /// `true` for cells whose output launches a new path (arrival does not
    /// depend on fanin arrivals).
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Dff)
    }

    /// `true` for cells that terminate a path (slack is checked here).
    pub fn is_endpoint(self) -> bool {
        matches!(self, GateKind::Output | GateKind::Dff)
    }

    /// Maximum number of logic inputs this cell samples.
    pub fn max_fanin(self) -> usize {
        match self {
            GateKind::Input => 0,
            GateKind::Output | GateKind::Inv | GateKind::Buf | GateKind::Dff => 1,
            _ => 2,
        }
    }
}

/// Gate identifier: index into [`Circuit::gates`].
pub type GateId = u32;

/// One instance in the netlist.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Cell function.
    pub kind: GateKind,
    /// Drive strength (X1 = 1.0). Resizing a gate changes this: larger
    /// drive → faster cell, bigger input capacitance.
    pub drive: f32,
    /// Driving gates (logic inputs; for a DFF, its D-side fanins).
    pub fanins: Vec<GateId>,
    /// Driven gates.
    pub fanouts: Vec<GateId>,
}

/// A gate-level design.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// All gates; edges are stored on both endpoints.
    pub gates: Vec<Gate>,
    /// Clock period in picoseconds (capture constraint for endpoints).
    pub clock_period: f64,
}

impl Circuit {
    /// An empty design with the given clock period (ps).
    pub fn new(clock_period: f64) -> Circuit {
        Circuit {
            gates: Vec::new(),
            clock_period,
        }
    }

    /// Adds a gate with no connections; returns its id.
    pub fn add_gate(&mut self, kind: GateKind, drive: f32) -> GateId {
        let id = self.gates.len() as GateId;
        self.gates.push(Gate {
            kind,
            drive,
            fanins: Vec::new(),
            fanouts: Vec::new(),
        });
        id
    }

    /// Connects `from`'s output to one of `to`'s inputs.
    ///
    /// Panics when `to` already has its maximum fanin, or on self-loops.
    pub fn connect(&mut self, from: GateId, to: GateId) {
        assert_ne!(from, to, "self-loop");
        let max = self.gates[to as usize].kind.max_fanin();
        assert!(
            self.gates[to as usize].fanins.len() < max,
            "gate {to} ({:?}) fanin overflow",
            self.gates[to as usize].kind
        );
        self.gates[from as usize].fanouts.push(to);
        self.gates[to as usize].fanins.push(from);
    }

    /// Number of gates (including ports).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets (one per driving gate with at least one fanout).
    pub fn num_nets(&self) -> usize {
        self.gates.iter().filter(|g| !g.fanouts.is_empty()).count()
    }

    /// Number of fanin/fanout edges.
    pub fn num_edges(&self) -> usize {
        self.gates.iter().map(|g| g.fanouts.len()).sum()
    }

    /// Ids of all timing endpoints (primary outputs and DFF D-inputs).
    pub fn endpoints(&self) -> impl Iterator<Item = GateId> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_endpoint())
            .map(|(i, _)| i as GateId)
    }

    /// Ids of all timing sources (primary inputs and DFF Q-outputs).
    pub fn sources(&self) -> impl Iterator<Item = GateId> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_source())
            .map(|(i, _)| i as GateId)
    }

    /// Topological order of the *timing graph*: edges into a source gate
    /// (DFF) are cut, so the order exists even with sequential feedback.
    /// Returns `None` if a combinational loop exists.
    pub fn timing_topological_order(&self) -> Option<Vec<GateId>> {
        let n = self.num_gates();
        let mut degree = vec![0u32; n];
        for (i, g) in self.gates.iter().enumerate() {
            if !g.kind.is_source() {
                degree[i] = g.fanins.len() as u32;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut frontier: Vec<GateId> = (0..n as GateId)
            .filter(|&v| degree[v as usize] == 0)
            .collect();
        while let Some(v) = frontier.pop() {
            order.push(v);
            for &s in &self.gates[v as usize].fanouts {
                // Edges into timing sources are cut in the timing graph.
                if self.gates[s as usize].kind.is_source() {
                    continue;
                }
                degree[s as usize] -= 1;
                if degree[s as usize] == 0 {
                    frontier.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Longest-path levels of the timing graph (levelization, §II-D).
    /// Returns `None` on a combinational loop.
    pub fn levelize(&self) -> Option<Vec<Vec<GateId>>> {
        let order = self.timing_topological_order()?;
        let n = self.num_gates();
        let mut level = vec![0u32; n];
        let mut max_level = 0;
        for &v in &order {
            let lv = level[v as usize];
            for &s in &self.gates[v as usize].fanouts {
                if self.gates[s as usize].kind.is_source() {
                    continue;
                }
                if level[s as usize] < lv + 1 {
                    level[s as usize] = lv + 1;
                    max_level = max_level.max(lv + 1);
                }
            }
        }
        let mut levels = vec![Vec::new(); max_level as usize + 1];
        for v in 0..n as GateId {
            levels[level[v as usize] as usize].push(v);
        }
        Some(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// inp → inv → dff → buf → out, plus dff feedback through an inverter
    /// (sequential loop that the timing graph must cut).
    pub(crate) fn tiny_seq_circuit() -> Circuit {
        let mut c = Circuit::new(1000.0);
        let inp = c.add_gate(GateKind::Input, 1.0);
        let inv = c.add_gate(GateKind::Inv, 1.0);
        let dff = c.add_gate(GateKind::Dff, 1.0);
        let buf = c.add_gate(GateKind::Buf, 1.0);
        let out = c.add_gate(GateKind::Output, 1.0);
        let fb = c.add_gate(GateKind::Inv, 1.0);
        c.connect(inp, inv);
        c.connect(inv, dff); // D input
        c.connect(dff, buf); // Q output
        c.connect(buf, out);
        c.connect(dff, fb); // side branch off Q (dangling sink)
        c
    }

    #[test]
    fn construction_counts() {
        let c = tiny_seq_circuit();
        assert_eq!(c.num_gates(), 6);
        assert!(c.num_edges() >= 4);
        assert!(c.num_nets() >= 3);
        assert_eq!(c.sources().count(), 2); // input + dff
        assert_eq!(c.endpoints().count(), 2); // output + dff
    }

    #[test]
    fn timing_order_cuts_sequential_feedback() {
        let mut c = Circuit::new(1000.0);
        let dff = c.add_gate(GateKind::Dff, 1.0);
        let inv = c.add_gate(GateKind::Inv, 1.0);
        // dff -> inv -> dff : sequential loop, cut at the dff's D input.
        c.connect(dff, inv);
        c.connect(inv, dff);
        let order = c.timing_topological_order().expect("loop must be cut");
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn combinational_loop_detected() {
        let mut c = Circuit::new(1000.0);
        let a = c.add_gate(GateKind::Nand2, 1.0);
        let b = c.add_gate(GateKind::Nand2, 1.0);
        c.connect(a, b);
        c.connect(b, a);
        assert!(c.timing_topological_order().is_none());
        assert!(c.levelize().is_none());
    }

    #[test]
    fn levelize_orders_by_depth() {
        let c = tiny_seq_circuit();
        let levels = c.levelize().unwrap();
        // Level 0 must contain all sources.
        let l0 = &levels[0];
        for s in c.sources() {
            assert!(l0.contains(&s), "source {s} not at level 0");
        }
    }

    #[test]
    #[should_panic(expected = "fanin overflow")]
    fn fanin_overflow_panics() {
        let mut c = Circuit::new(1000.0);
        let a = c.add_gate(GateKind::Input, 1.0);
        let b = c.add_gate(GateKind::Input, 1.0);
        let inv = c.add_gate(GateKind::Inv, 1.0);
        c.connect(a, inv);
        c.connect(b, inv);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut c = Circuit::new(1000.0);
        let a = c.add_gate(GateKind::Buf, 1.0);
        c.connect(a, a);
    }
}
