//! OpenTimer v2: the rustflow (Cpp-Taskflow-style) timing engine.
//!
//! The v2 row of Table II. Note how little there is: one task per region
//! gate, one `precede` per in-region edge, `wait_for_all` — the tasking
//! library absorbs all scheduling concerns that v1 had to hand-build
//! ("a large amount of exhaustive OpenMP dependency clauses ... are now
//! replaced with only a few lines of flexible Cpp-Taskflow code").

use crate::analysis::TimerInner;
use crate::circuit::GateId;
use crate::engine_v1::SharedTimer;
use rustflow::{Executor, Taskflow};
use std::sync::Arc;

pub(crate) fn add_region_edges(
    inner: &TimerInner,
    region: &[GateId],
    epoch: u32,
    tasks: &[rustflow::Task<'_>],
) {
    for (i, &g) in region.iter().enumerate() {
        for &f in &inner.circuit.gates[g as usize].fanouts {
            if inner.circuit.gates[f as usize].kind.is_source() {
                continue;
            }
            if inner.is_stamped(f, epoch) {
                tasks[i].precede(tasks[inner.region_index(f)]);
            }
        }
    }
}

/// Cpp-Taskflow-style: build a task dependency graph over the region and
/// dispatch it. Construction is part of the measured work, matching the
/// paper ("the time to create and launch a new task dependency graph").
pub(crate) fn run_rustflow(
    inner: &TimerInner,
    region: &[GateId],
    epoch: u32,
    executor: &Arc<Executor>,
) {
    let tf = Taskflow::with_executor(Arc::clone(executor));
    let shared = SharedTimer(inner as *const TimerInner);
    let tasks: Vec<rustflow::Task<'_>> = region
        .iter()
        .map(|&g| {
            tf.emplace(move || {
                // SAFETY: wait_for_all below keeps `inner` borrowed until
                // every task completed.
                let timer = unsafe { shared.get() };
                timer.compute_gate(g);
            })
        })
        .collect();
    add_region_edges(inner, region, epoch, &tasks);
    tf.wait_for_all();
}

/// The v2 required-time pass: one task per gate, edges reversed (a gate
/// waits for all its non-cut fanouts), dispatched as a rustflow graph.
pub(crate) fn run_required_rustflow(inner: &TimerInner, executor: &Arc<Executor>) {
    let n = inner.circuit.num_gates();
    let tf = Taskflow::with_executor(Arc::clone(executor));
    let shared = SharedTimer(inner as *const TimerInner);
    let tasks: Vec<rustflow::Task<'_>> = (0..n as GateId)
        .map(|g| {
            tf.emplace(move || {
                // SAFETY: wait_for_all below outlives every task.
                let timer = unsafe { shared.get() };
                timer.compute_required(g);
            })
        })
        .collect();
    for g in 0..n {
        for &f in &inner.circuit.gates[g].fanouts {
            if inner.circuit.gates[f as usize].kind.is_source() {
                continue; // cut edge, as in the forward timing graph
            }
            // Reverse dependency: fanout's required before ours.
            tasks[f as usize].precede(tasks[g]);
        }
    }
    tf.wait_for_all();
}
