//! Synthetic circuit generation.
//!
//! The paper evaluates OpenTimer on TAU-2015 / OpenCores designs (tv80,
//! vga_lcd, netcard, leon3mp) that we cannot redistribute; what the timing
//! experiments actually exercise is the *shape* of the circuit-induced
//! task graph — gate count, logic depth, fanout distribution, and the mix
//! of sequential cut points. This module generates seeded random netlists
//! matched to each benchmark's published gate/net counts, with
//! level-structured locality so logic depth and fanout look like synthesized
//! logic rather than a uniform random graph (see DESIGN.md §2 for the
//! substitution argument).

use crate::circuit::{Circuit, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated design.
#[derive(Debug, Clone, Copy)]
pub struct CircuitSpec {
    /// Benchmark label.
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Internal gates (combinational + flip-flops).
    pub gates: usize,
    /// Fraction of internal gates that are DFFs (sequential cut points).
    pub dff_ratio: f64,
    /// Target combinational logic depth (levels between cut points).
    pub depth: usize,
    /// RNG seed.
    pub seed: u64,
    /// Clock period (ps).
    pub clock_period: f64,
}

impl CircuitSpec {
    /// tv80: an 8-bit CPU core — "5.3K gates and 5.3K nets" (§IV-B).
    pub fn tv80() -> CircuitSpec {
        CircuitSpec {
            name: "tv80",
            inputs: 32,
            outputs: 32,
            gates: 5_300,
            dff_ratio: 0.12,
            depth: 38,
            seed: 0x7480,
            clock_period: 1200.0,
        }
    }

    /// vga_lcd: display controller — "139.5K gates and 139.6K nets".
    pub fn vga_lcd() -> CircuitSpec {
        CircuitSpec {
            name: "vga_lcd",
            inputs: 89,
            outputs: 109,
            gates: 139_500,
            // vga_lcd is a register-rich display pipeline: frequent
            // sequential cut points keep incremental cones at the ~8K-task
            // scale the paper reports (0.8M tasks / 100 iterations).
            dff_ratio: 0.24,
            depth: 40,
            seed: 0x0A6A,
            clock_period: 1500.0,
        }
    }

    /// netcard: network card design — "1.4M gates" (OpenCores).
    pub fn netcard() -> CircuitSpec {
        CircuitSpec {
            name: "netcard",
            inputs: 1_836,
            outputs: 10,
            gates: 1_400_000,
            dff_ratio: 0.07,
            depth: 60,
            seed: 0x0E7C,
            clock_period: 2000.0,
        }
    }

    /// leon3mp: multiprocessor SoC — "1.2M gates" (OpenCores).
    pub fn leon3mp() -> CircuitSpec {
        CircuitSpec {
            name: "leon3mp",
            inputs: 333,
            outputs: 102,
            gates: 1_200_000,
            dff_ratio: 0.10,
            depth: 70,
            seed: 0x1E03,
            clock_period: 2000.0,
        }
    }

    /// A small design for unit tests.
    pub fn small_test(gates: usize, seed: u64) -> CircuitSpec {
        CircuitSpec {
            name: "small_test",
            inputs: 8,
            outputs: 8,
            gates,
            dff_ratio: 0.1,
            depth: 10,
            seed,
            clock_period: 2000.0,
        }
    }

    /// A copy of this spec scaled to `factor` of its gate count (used by
    /// the harness to produce reduced-size default runs).
    pub fn scaled(mut self, factor: f64) -> CircuitSpec {
        self.gates = ((self.gates as f64 * factor) as usize).max(64);
        self
    }

    /// Generates the netlist.
    pub fn generate(&self) -> Circuit {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut circuit = Circuit::new(self.clock_period);

        // Primary inputs.
        let inputs: Vec<u32> = (0..self.inputs.max(1))
            .map(|_| circuit.add_gate(GateKind::Input, 1.0))
            .collect();

        // Internal gates in `depth` levels. Each level's gates draw their
        // fanins mostly from the previous level (synthesized-logic
        // locality), occasionally from further back or from the inputs.
        let depth = self.depth.max(2);
        let per_level = (self.gates / depth).max(1);
        let mut prev_level: Vec<u32> = inputs.clone();
        let mut all_internal: Vec<u32> = Vec::with_capacity(self.gates);
        let mut created = 0;
        let drive_choices = [0.5f32, 1.0, 1.0, 1.0, 2.0, 4.0];

        while created < self.gates {
            let count = per_level.min(self.gates - created);
            let mut this_level = Vec::with_capacity(count);
            for _ in 0..count {
                let kind = if rng.gen_bool(self.dff_ratio) {
                    GateKind::Dff
                } else {
                    GateKind::COMBINATIONAL[rng.gen_range(0..GateKind::COMBINATIONAL.len())]
                };
                let drive = drive_choices[rng.gen_range(0..drive_choices.len())];
                let g = circuit.add_gate(kind, drive);
                // Pick fanins: previous level with high probability, else
                // any earlier internal gate or a primary input.
                let wanted = kind.max_fanin();
                for _ in 0..wanted {
                    let from = if rng.gen_bool(0.8) || all_internal.is_empty() {
                        prev_level[rng.gen_range(0..prev_level.len())]
                    } else if rng.gen_bool(0.8) {
                        all_internal[rng.gen_range(0..all_internal.len())]
                    } else {
                        inputs[rng.gen_range(0..inputs.len())]
                    };
                    if from != g {
                        circuit.connect(from, g);
                    }
                }
                this_level.push(g);
                all_internal.push(g);
            }
            prev_level = this_level;
            created += count;
        }

        // Primary outputs sample the last levels.
        for _ in 0..self.outputs.max(1) {
            let out = circuit.add_gate(GateKind::Output, 1.0);
            let from = prev_level[rng.gen_range(0..prev_level.len())];
            circuit.connect(from, out);
        }
        circuit
    }
}

/// A stream of random design modifications (the optimization-loop
/// transforms of §II-C): each step resizes one combinational gate,
/// returning the seed set for the incremental update.
pub struct DesignModifier {
    rng: StdRng,
    candidates: Vec<u32>,
}

impl DesignModifier {
    /// Prepares a modifier over `circuit`'s combinational gates.
    pub fn new(circuit: &Circuit, seed: u64) -> DesignModifier {
        let candidates = circuit
            .gates
            .iter()
            .enumerate()
            .filter(|(_, g)| GateKind::COMBINATIONAL.contains(&g.kind) && !g.fanouts.is_empty())
            .map(|(i, _)| i as u32)
            .collect();
        DesignModifier {
            rng: StdRng::seed_from_u64(seed),
            candidates,
        }
    }

    /// Applies one random resize through `timer`, returning the seeds for
    /// the subsequent incremental update.
    pub fn apply(&mut self, timer: &mut crate::engine::Timer) -> Vec<u32> {
        let g = self.candidates[self.rng.gen_range(0..self.candidates.len())];
        let drives = [0.5f32, 1.0, 2.0, 4.0];
        let current = timer.circuit().gates[g as usize].drive;
        let mut new_drive = current;
        while new_drive == current {
            new_drive = drives[self.rng.gen_range(0..drives.len())];
        }
        timer.resize_gate(g, new_drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_counts_match_spec() {
        let spec = CircuitSpec::small_test(500, 42);
        let c = spec.generate();
        assert_eq!(c.num_gates(), spec.inputs + 500 + spec.outputs);
        assert!(c.timing_topological_order().is_some(), "generated a loop");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CircuitSpec::small_test(300, 7).generate();
        let b = CircuitSpec::small_test(300, 7).generate();
        assert_eq!(a.num_edges(), b.num_edges());
        for (ga, gb) in a.gates.iter().zip(&b.gates) {
            assert_eq!(ga.kind, gb.kind);
            assert_eq!(ga.fanins, gb.fanins);
        }
    }

    #[test]
    fn has_sources_and_endpoints() {
        let c = CircuitSpec::small_test(400, 3).generate();
        assert!(c.sources().count() > 8); // inputs + some DFFs
        assert!(c.endpoints().count() > 8); // outputs + some DFFs
    }

    #[test]
    fn depth_is_bounded_by_spec() {
        let spec = CircuitSpec::small_test(1000, 9);
        let c = spec.generate();
        let levels = c.levelize().unwrap();
        // Logic depth should be in the vicinity of the requested depth
        // (sequential cuts can shorten it; cross-level edges can stretch
        // level count slightly).
        assert!(levels.len() >= 3, "levels = {}", levels.len());
        assert!(levels.len() <= 3 * spec.depth, "levels = {}", levels.len());
    }

    #[test]
    fn modifier_changes_drive_and_yields_seeds() {
        let c = CircuitSpec::small_test(200, 5).generate();
        let mut timer = crate::engine::Timer::new(c);
        let mut modifier = DesignModifier::new(timer.circuit(), 1);
        let before: Vec<f32> = timer.circuit().gates.iter().map(|g| g.drive).collect();
        let seeds = modifier.apply(&mut timer);
        assert!(!seeds.is_empty());
        let after: Vec<f32> = timer.circuit().gates.iter().map(|g| g.drive).collect();
        assert_ne!(before, after);
    }

    #[test]
    fn scaled_reduces_gate_count() {
        let spec = CircuitSpec::vga_lcd().scaled(0.01);
        assert_eq!(spec.gates, 1_395);
    }
}
