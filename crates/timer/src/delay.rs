//! Cell delay model: a compact NLDM-style (slew, load)-linear library.
//!
//! Real NanGate-45nm NLDM tables (what the paper's experiments use) are
//! 2-D lookup tables in input slew × output load. A first-order fit of
//! those tables is linear in both coordinates, which is what we implement:
//!
//! ```text
//! delay(cell)  = (intrinsic + k_slew · slew_in + k_load · load) / drive
//! slew_out     = (slew_base + s_load · load) / drive
//! input_cap    = cap_base · drive
//! load(driver) = Σ fanout input_cap + wire_cap
//! ```
//!
//! Resizing a gate (the incremental-timing design modifier) changes
//! `drive`, which simultaneously speeds the cell up and increases the
//! load on its fanins — exactly the local/global ripple the paper's
//! Figure 9 fluctuation comes from. All times in picoseconds, capacitance
//! in femtofarads.

use crate::circuit::{Circuit, GateId, GateKind};

/// Per-kind delay coefficients.
#[derive(Debug, Clone, Copy)]
pub struct CellParams {
    /// Intrinsic delay at zero load and zero slew (ps).
    pub intrinsic: f64,
    /// Delay sensitivity to input slew (ps/ps).
    pub k_slew: f64,
    /// Delay sensitivity to output load (ps/fF).
    pub k_load: f64,
    /// Output slew at zero load (ps).
    pub slew_base: f64,
    /// Output slew sensitivity to load (ps/fF).
    pub s_load: f64,
    /// Input capacitance at drive 1.0 (fF).
    pub cap_base: f64,
}

/// Looks up the library parameters of a cell kind.
pub fn cell_params(kind: GateKind) -> CellParams {
    // Values loosely patterned after NanGate 45nm typical corner.
    match kind {
        GateKind::Input => CellParams {
            intrinsic: 0.0,
            k_slew: 0.0,
            k_load: 2.0,
            slew_base: 5.0,
            s_load: 1.0,
            cap_base: 0.0,
        },
        GateKind::Output => CellParams {
            intrinsic: 0.0,
            k_slew: 0.0,
            k_load: 0.0,
            slew_base: 0.0,
            s_load: 0.0,
            cap_base: 2.0,
        },
        GateKind::Inv => CellParams {
            intrinsic: 6.0,
            k_slew: 0.10,
            k_load: 3.0,
            slew_base: 4.0,
            s_load: 1.5,
            cap_base: 1.6,
        },
        GateKind::Buf => CellParams {
            intrinsic: 12.0,
            k_slew: 0.08,
            k_load: 2.5,
            slew_base: 4.5,
            s_load: 1.2,
            cap_base: 1.8,
        },
        GateKind::Nand2 => CellParams {
            intrinsic: 9.0,
            k_slew: 0.12,
            k_load: 3.4,
            slew_base: 5.0,
            s_load: 1.7,
            cap_base: 1.7,
        },
        GateKind::Nor2 => CellParams {
            intrinsic: 11.0,
            k_slew: 0.14,
            k_load: 3.8,
            slew_base: 5.5,
            s_load: 1.9,
            cap_base: 1.9,
        },
        GateKind::And2 => CellParams {
            intrinsic: 14.0,
            k_slew: 0.11,
            k_load: 3.0,
            slew_base: 5.0,
            s_load: 1.5,
            cap_base: 1.7,
        },
        GateKind::Or2 => CellParams {
            intrinsic: 15.0,
            k_slew: 0.12,
            k_load: 3.2,
            slew_base: 5.2,
            s_load: 1.6,
            cap_base: 1.8,
        },
        GateKind::Xor2 => CellParams {
            intrinsic: 20.0,
            k_slew: 0.15,
            k_load: 4.0,
            slew_base: 6.0,
            s_load: 2.0,
            cap_base: 2.4,
        },
        GateKind::Dff => CellParams {
            // intrinsic here is the clock-to-Q delay.
            intrinsic: 35.0,
            k_slew: 0.0,
            k_load: 3.0,
            slew_base: 6.0,
            s_load: 1.5,
            cap_base: 1.5,
        },
    }
}

/// Setup time a DFF's D input must meet before the capturing edge (ps).
pub const DFF_SETUP: f64 = 15.0;

/// Per-fanout wire capacitance (fF) — a simple fanout-count wire model.
pub const WIRE_CAP_PER_FANOUT: f64 = 0.8;

/// Driver slew assumed at primary inputs (ps).
pub const PRIMARY_INPUT_SLEW: f64 = 10.0;

/// Output load seen by gate `g`: fanout input caps plus wire cap.
pub fn output_load(circuit: &Circuit, g: GateId) -> f64 {
    let gate = &circuit.gates[g as usize];
    let mut load = gate.fanouts.len() as f64 * WIRE_CAP_PER_FANOUT;
    for &f in &gate.fanouts {
        let fg = &circuit.gates[f as usize];
        load += cell_params(fg.kind).cap_base * fg.drive as f64;
    }
    load
}

// ---------------------------------------------------------------------------
// NLDM lookup tables
// ---------------------------------------------------------------------------

/// Table resolution (NanGate NLDM templates are 7×7; 7 keeps the lookup
/// cost realistic).
const AXIS: usize = 7;

/// A (input slew × output load) lookup table pair for one cell kind —
/// the non-linear delay model real liberty files carry.
#[derive(Debug, Clone)]
pub struct NldmTable {
    slew_axis: [f64; AXIS],
    load_axis: [f64; AXIS],
    delay: [[f64; AXIS]; AXIS],
    slew: [[f64; AXIS]; AXIS],
}

impl NldmTable {
    /// Synthesizes a table from the first-order cell coefficients, adding
    /// the slew×load cross term real tables exhibit.
    fn from_params(p: &CellParams) -> NldmTable {
        let slew_axis = [1.0, 3.0, 8.0, 20.0, 50.0, 130.0, 320.0];
        let load_axis = [0.25, 1.0, 3.0, 8.0, 20.0, 50.0, 128.0];
        let mut delay = [[0.0; AXIS]; AXIS];
        let mut slew = [[0.0; AXIS]; AXIS];
        for (i, &s) in slew_axis.iter().enumerate() {
            for (j, &l) in load_axis.iter().enumerate() {
                let cross = 0.002 * p.k_load * l * s; // mild nonlinearity
                delay[i][j] = p.intrinsic + p.k_slew * s + p.k_load * l + cross;
                slew[i][j] = p.slew_base + p.s_load * l + 0.2 * s;
            }
        }
        NldmTable {
            slew_axis,
            load_axis,
            delay,
            slew,
        }
    }

    /// Bilinear interpolation with clamped extrapolation, exactly what an
    /// STA engine does per arc per update.
    fn lookup(&self, table: &[[f64; AXIS]; AXIS], slew_in: f64, load: f64) -> f64 {
        let (i, ts) = axis_locate(&self.slew_axis, slew_in);
        let (j, tl) = axis_locate(&self.load_axis, load);
        let d00 = table[i][j];
        let d01 = table[i][j + 1];
        let d10 = table[i + 1][j];
        let d11 = table[i + 1][j + 1];
        d00 * (1.0 - ts) * (1.0 - tl)
            + d01 * (1.0 - ts) * tl
            + d10 * ts * (1.0 - tl)
            + d11 * ts * tl
    }
}

/// Finds the interpolation cell and fraction on one axis (clamped).
fn axis_locate(axis: &[f64; AXIS], x: f64) -> (usize, f64) {
    if x <= axis[0] {
        return (0, 0.0);
    }
    if x >= axis[AXIS - 1] {
        return (AXIS - 2, 1.0);
    }
    let mut i = 0;
    while axis[i + 1] < x {
        i += 1;
    }
    (i, (x - axis[i]) / (axis[i + 1] - axis[i]))
}

/// The library: one table per cell kind, built once.
fn nldm_library() -> &'static [NldmTable] {
    use std::sync::OnceLock;
    static LIB: OnceLock<Vec<NldmTable>> = OnceLock::new();
    LIB.get_or_init(|| {
        ALL_KINDS
            .iter()
            .map(|&k| NldmTable::from_params(&cell_params(k)))
            .collect()
    })
}

const ALL_KINDS: [GateKind; 10] = [
    GateKind::Input,
    GateKind::Output,
    GateKind::Inv,
    GateKind::Buf,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::And2,
    GateKind::Or2,
    GateKind::Xor2,
    GateKind::Dff,
];

fn kind_index(kind: GateKind) -> usize {
    match kind {
        GateKind::Input => 0,
        GateKind::Output => 1,
        GateKind::Inv => 2,
        GateKind::Buf => 3,
        GateKind::Nand2 => 4,
        GateKind::Nor2 => 5,
        GateKind::And2 => 6,
        GateKind::Or2 => 7,
        GateKind::Xor2 => 8,
        GateKind::Dff => 9,
    }
}

/// The NLDM table of a cell kind.
pub fn nldm_table(kind: GateKind) -> &'static NldmTable {
    &nldm_library()[kind_index(kind)]
}

/// Propagation delay through gate `g` given its worst input slew
/// (NLDM bilinear lookup, scaled by drive strength).
pub fn gate_delay(circuit: &Circuit, g: GateId, slew_in: f64) -> f64 {
    let gate = &circuit.gates[g as usize];
    let table = nldm_table(gate.kind);
    let load = output_load(circuit, g);
    table.lookup(&table.delay, slew_in, load) / gate.drive as f64
}

/// Output slew of gate `g` (NLDM bilinear lookup, scaled by drive).
pub fn gate_slew(circuit: &Circuit, g: GateId, slew_in: f64) -> f64 {
    let gate = &circuit.gates[g as usize];
    let table = nldm_table(gate.kind);
    let load = output_load(circuit, g);
    // The slew table embeds the input-slew carry-through; dividing the
    // load-dependent part by drive models a stronger output stage.
    let raw = table.lookup(&table.slew, slew_in, load);
    (raw - 0.2 * slew_in) / gate.drive as f64 + 0.2 * slew_in
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv_chain() -> Circuit {
        let mut c = Circuit::new(1000.0);
        let a = c.add_gate(GateKind::Input, 1.0);
        let b = c.add_gate(GateKind::Inv, 1.0);
        let d = c.add_gate(GateKind::Output, 1.0);
        c.connect(a, b);
        c.connect(b, d);
        c
    }

    #[test]
    fn load_counts_fanout_caps_and_wire() {
        let c = inv_chain();
        // Input drives one Inv: cap 1.6 + wire 0.8.
        let load = output_load(&c, 0);
        assert!((load - 2.4).abs() < 1e-9, "load = {load}");
    }

    #[test]
    fn bigger_drive_is_faster_but_heavier() {
        let mut c = inv_chain();
        let d1 = gate_delay(&c, 1, 10.0);
        let load_before = output_load(&c, 0);
        c.gates[1].drive = 2.0;
        let d2 = gate_delay(&c, 1, 10.0);
        let load_after = output_load(&c, 0);
        assert!(d2 < d1, "{d2} !< {d1}");
        assert!(load_after > load_before);
    }

    #[test]
    fn slew_degrades_delay() {
        let c = inv_chain();
        assert!(gate_delay(&c, 1, 50.0) > gate_delay(&c, 1, 5.0));
    }

    #[test]
    fn slew_propagates_partially() {
        let c = inv_chain();
        let s1 = gate_slew(&c, 1, 0.0);
        let s2 = gate_slew(&c, 1, 100.0);
        assert!(s2 > s1);
        assert!(s2 - s1 < 100.0); // damped, not amplified
    }

    #[test]
    fn every_kind_has_params() {
        for kind in GateKind::COMBINATIONAL {
            let p = cell_params(kind);
            assert!(p.intrinsic > 0.0);
            assert!(p.cap_base > 0.0);
        }
        assert!(cell_params(GateKind::Dff).intrinsic > 0.0);
    }
}
