//! The wavefront computing micro-benchmark (§IV-A, Figure 6).
//!
//! "A 2D matrix is partitioned into a set of identical square blocks. Each
//! block is mapped to a task that performs a nominal operation with
//! constant time complexity. The wavefront propagates task dependencies
//! monotonically from the top-left block to the bottom-right block. Each
//! task precedes one task to the right and another below." Blocks on the
//! same anti-diagonal are mutually independent; the dependency graph is
//! perfectly regular.

use crate::kernels::{nominal_work, Sink};
use std::sync::Arc;
use tf_baselines::Dag;

/// Parameters of a wavefront workload.
#[derive(Debug, Clone, Copy)]
pub struct WavefrontSpec {
    /// Blocks per side: the DAG has `dim * dim` tasks.
    pub dim: usize,
    /// Spin iterations of the nominal per-block kernel.
    pub work_iters: u32,
}

impl WavefrontSpec {
    /// A wavefront with `dim * dim` blocks and the default nominal kernel.
    pub fn new(dim: usize) -> Self {
        WavefrontSpec {
            dim,
            work_iters: 40,
        }
    }

    /// Total number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.dim * self.dim
    }
}

/// Builds the wavefront task DAG. Every task folds its kernel result into
/// the returned [`Sink`], which also serves as a correctness checksum:
/// the expected value is independent of execution order.
pub fn build(spec: WavefrontSpec) -> (Dag, Arc<Sink>) {
    let n = spec.dim;
    let sink = Arc::new(Sink::new());
    let mut dag = Dag::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            let sink = Arc::clone(&sink);
            let seed = (r * n + c) as u64 + 1;
            let iters = spec.work_iters;
            dag.add(move || {
                sink.consume(nominal_work(seed, iters));
            });
        }
    }
    // Each block precedes its right and lower neighbours.
    for r in 0..n {
        for c in 0..n {
            let id = r * n + c;
            if c + 1 < n {
                dag.edge(id, id + 1);
            }
            if r + 1 < n {
                dag.edge(id, id + n);
            }
        }
    }
    (dag, sink)
}

/// The order-independent checksum `build`'s sink converges to.
pub fn expected_checksum(spec: WavefrontSpec) -> u64 {
    let mut acc = 0u64;
    for id in 0..spec.num_tasks() {
        acc ^= nominal_work(id as u64 + 1, spec.work_iters);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_regular() {
        let spec = WavefrontSpec::new(4);
        let (dag, _sink) = build(spec);
        assert_eq!(dag.len(), 16);
        // Edges: 2*n*(n-1) for an n x n wavefront.
        assert_eq!(dag.num_edges(), 2 * 4 * 3);
        // Corner cases: top-left has out-degree 2 / in-degree 0;
        // bottom-right has out-degree 0 / in-degree 2.
        assert_eq!(dag.successors_of(0).len(), 2);
        assert_eq!(dag.in_degree_of(0), 0);
        assert_eq!(dag.successors_of(15).len(), 0);
        assert_eq!(dag.in_degree_of(15), 2);
    }

    #[test]
    fn levels_are_antidiagonals() {
        let spec = WavefrontSpec::new(5);
        let (dag, _sink) = build(spec);
        let levels = dag.levelize().unwrap();
        assert_eq!(levels.len(), 9); // 2*dim - 1 anti-diagonals
        let sizes: Vec<usize> = levels.iter().map(|l| l.len()).collect();
        assert_eq!(sizes, vec![1, 2, 3, 4, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn sequential_run_matches_checksum() {
        let spec = WavefrontSpec::new(6);
        let (dag, sink) = build(spec);
        dag.run_sequential();
        assert_eq!(sink.value(), expected_checksum(spec));
    }
}
