//! Canonical task-graph shapes used by the scheduling micro-benches:
//! linear chains (stress the cache-slot path), wide fans (stress wake-ups
//! and stealing), and binary reduction trees (stress join counters).

use tf_baselines::Dag;

/// A linear chain of `n` no-op tasks.
pub fn chain(n: usize) -> Dag {
    let mut dag = Dag::with_capacity(n);
    let mut prev = None;
    for _ in 0..n {
        let v = dag.add(|| {});
        if let Some(p) = prev {
            dag.edge(p, v);
        }
        prev = Some(v);
    }
    dag
}

/// One source fanning out to `n` no-op tasks.
pub fn fan(n: usize) -> Dag {
    let mut dag = Dag::with_capacity(n + 1);
    let src = dag.add(|| {});
    for _ in 0..n {
        let v = dag.add(|| {});
        dag.edge(src, v);
    }
    dag
}

/// A complete binary in-tree reducing `leaves` leaves to one root.
pub fn tree(leaves: usize) -> Dag {
    let mut dag = Dag::new();
    let mut frontier: Vec<usize> = (0..leaves.max(1)).map(|_| dag.add(|| {})).collect();
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / 2 + 1);
        for pair in frontier.chunks(2) {
            if pair.len() == 2 {
                let parent = dag.add(|| {});
                dag.edge(pair[0], parent);
                dag.edge(pair[1], parent);
                next.push(parent);
            } else {
                next.push(pair[0]);
            }
        }
        frontier = next;
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let dag = chain(10);
        assert_eq!(dag.len(), 10);
        assert_eq!(dag.num_edges(), 9);
        let levels = dag.levelize().unwrap();
        assert_eq!(levels.len(), 10);
    }

    #[test]
    fn fan_shape() {
        let dag = fan(16);
        assert_eq!(dag.len(), 17);
        assert_eq!(dag.num_edges(), 16);
        assert_eq!(dag.successors_of(0).len(), 16);
    }

    #[test]
    fn tree_shape_counts() {
        // A complete binary in-tree over 2^k leaves has 2^(k+1)-1 nodes.
        let dag = tree(16);
        assert_eq!(dag.len(), 31);
        assert_eq!(dag.num_edges(), 30);
        assert!(dag.topological_order().is_some());
    }

    #[test]
    fn tree_odd_leaves() {
        let dag = tree(7);
        assert!(dag.topological_order().is_some());
        // Exactly one sink (the root).
        let sinks = (0..dag.len())
            .filter(|&v| dag.successors_of(v).is_empty())
            .count();
        assert_eq!(sinks, 1);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(chain(1).len(), 1);
        assert_eq!(fan(0).len(), 1);
        assert_eq!(tree(1).len(), 1);
    }
}
