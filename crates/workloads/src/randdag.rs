//! The graph-traversal micro-benchmark (§IV-A, Figure 7 right).
//!
//! "The graph traversal benchmark reads in a randomly generated graph and
//! casts it to a task dependency graph that performs a parallel traversal.
//! ... we limit each node to have at most four input and output edges.
//! ... The resulting task dependency graph represents an irregular compute
//! pattern." (The degree bound exists in the paper because the OpenMP code
//! must enumerate every in/out-degree combination; we keep it so the
//! workload is the same.)

use crate::kernels::{nominal_work, Sink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tf_baselines::Dag;

/// Maximum in- and out-degree, matching the paper's OpenMP constraint.
pub const MAX_DEGREE: usize = 4;

/// Parameters of a random-DAG traversal workload.
#[derive(Debug, Clone, Copy)]
pub struct RandDagSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// RNG seed (workloads are reproducible across schedulers).
    pub seed: u64,
    /// Spin iterations of the nominal per-node kernel.
    pub work_iters: u32,
}

impl RandDagSpec {
    /// A random DAG of `nodes` tasks with the default kernel and seed.
    pub fn new(nodes: usize) -> Self {
        RandDagSpec {
            nodes,
            seed: 0x5EED,
            work_iters: 40,
        }
    }
}

/// Edge structure of a generated DAG (shared by the builder and tests).
///
/// Node ids are issued in topological order (edges only go from lower to
/// higher ids), which is how random task DAG generators keep acyclicity.
pub fn generate_edges(spec: RandDagSpec) -> Vec<(u32, u32)> {
    let n = spec.nodes;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out_degree = vec![0u8; n];
    let mut in_degree = vec![0u8; n];
    let mut edges = Vec::with_capacity(n * 2);
    // Candidate predecessors come from a sliding window so the graph has
    // local, circuit-like structure rather than uniformly long edges.
    const WINDOW: usize = 64;
    for (v, indeg) in in_degree.iter_mut().enumerate().skip(1) {
        let lo = v.saturating_sub(WINDOW);
        let wanted = rng.gen_range(0..=2.min(v - lo)); // 0..=2 incoming tries
        for _ in 0..wanted {
            if *indeg as usize >= MAX_DEGREE {
                break;
            }
            let u = rng.gen_range(lo..v);
            if out_degree[u] as usize >= MAX_DEGREE {
                continue;
            }
            out_degree[u] += 1;
            *indeg += 1;
            edges.push((u as u32, v as u32));
        }
    }
    edges
}

/// Builds the traversal task DAG with kernel payloads folding into a
/// checksum [`Sink`].
pub fn build(spec: RandDagSpec) -> (Dag, Arc<Sink>) {
    let sink = Arc::new(Sink::new());
    let mut dag = Dag::with_capacity(spec.nodes);
    for v in 0..spec.nodes {
        let sink = Arc::clone(&sink);
        let seed = v as u64 + 1;
        let iters = spec.work_iters;
        dag.add(move || {
            sink.consume(nominal_work(seed, iters));
        });
    }
    for (u, v) in generate_edges(spec) {
        dag.edge(u as usize, v as usize);
    }
    (dag, sink)
}

/// The order-independent checksum the sink converges to.
pub fn expected_checksum(spec: RandDagSpec) -> u64 {
    let mut acc = 0u64;
    for v in 0..spec.nodes {
        acc ^= nominal_work(v as u64 + 1, spec.work_iters);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = RandDagSpec::new(2000);
        assert_eq!(generate_edges(spec), generate_edges(spec));
        let mut spec2 = spec;
        spec2.seed += 1;
        assert_ne!(generate_edges(spec), generate_edges(spec2));
    }

    #[test]
    fn degree_bounds_hold() {
        let spec = RandDagSpec::new(5000);
        let (dag, _) = build(spec);
        for v in 0..dag.len() {
            assert!(dag.successors_of(v).len() <= MAX_DEGREE);
            assert!(dag.in_degree_of(v) as usize <= MAX_DEGREE);
        }
    }

    #[test]
    fn graph_is_acyclic() {
        let spec = RandDagSpec::new(3000);
        let (dag, _) = build(spec);
        assert!(dag.topological_order().is_some());
    }

    #[test]
    fn sequential_run_matches_checksum() {
        let spec = RandDagSpec::new(1000);
        let (dag, sink) = build(spec);
        dag.run_sequential();
        assert_eq!(sink.value(), expected_checksum(spec));
    }

    #[test]
    fn edges_are_forward_only() {
        let spec = RandDagSpec::new(4000);
        for (u, v) in generate_edges(spec) {
            assert!(u < v);
        }
    }
}
