//! Scheduler adapters: execute one scheduler-agnostic [`Dag`] under each
//! of the paper's four execution models.
//!
//! Per §IV-A, "our measure includes library ramp-up time, construction and
//! execution of the task dependency graph, and clean-up time" — so each
//! `run_*` function performs graph construction for its model from the
//! shared `Dag` description, executes, and tears down its per-run state.
//! Pools/executors (the "library ramp-up") are passed in so callers can
//! choose whether to include their creation in the timed region.

use rustflow::{Executor, Taskflow};
use std::sync::Arc;
use tf_baselines::{flowgraph::FlowGraphBuilder, levelized, Dag, Pool};

/// Executes `dag` on rustflow: builds a [`Taskflow`] (one task per node,
/// one `precede` per edge) and blocks until completion.
pub fn run_rustflow(dag: &Dag, executor: &Arc<Executor>) {
    let tf = Taskflow::with_executor(Arc::clone(executor));
    let tasks: Vec<rustflow::Task<'_>> = (0..dag.len())
        .map(|v| {
            let payload = dag.payload_of(v);
            tf.emplace(move || payload())
        })
        .collect();
    for v in 0..dag.len() {
        for &s in dag.successors_of(v) {
            tasks[v].precede(tasks[s as usize]);
        }
    }
    tf.wait_for_all();
}

/// A [`Dag`] frozen once into a rustflow [`Taskflow`] for repeated
/// execution: construction (emplace + precede) is paid a single time in
/// [`ReusableRustflow::new`], and every [`ReusableRustflow::run_n`] batch
/// re-arms the same topology instead of rebuilding it — the reusable-
/// topology counterpart of [`run_rustflow`], for iterative workloads
/// (training epochs, timing-driven loops) where per-iteration graph
/// construction would dominate.
pub struct ReusableRustflow {
    tf: Taskflow,
}

impl ReusableRustflow {
    /// Builds the taskflow for `dag` (one task per node, one `precede` per
    /// edge) without executing anything.
    pub fn new(dag: &Dag, executor: &Arc<Executor>) -> ReusableRustflow {
        let tf = Taskflow::with_executor(Arc::clone(executor));
        let tasks: Vec<rustflow::Task<'_>> = (0..dag.len())
            .map(|v| {
                let payload = dag.payload_of(v);
                tf.emplace(move || payload())
            })
            .collect();
        for v in 0..dag.len() {
            for &s in dag.successors_of(v) {
                tasks[v].precede(tasks[s as usize]);
            }
        }
        ReusableRustflow { tf }
    }

    /// Executes the frozen graph `n` times (iterations serialized, batch
    /// FIFO) and blocks until the batch completes.
    pub fn run_n(&self, n: u64) -> rustflow::RunResult {
        self.tf.run_n(n).get()
    }

    /// Total iterations executed across every batch so far.
    pub fn iterations(&self) -> u64 {
        self.tf.num_iterations()
    }

    /// The underlying taskflow, for diagnostics that need the frozen
    /// graph: `profile_snapshot`, `dump_profiled`, DOT dumps.
    pub fn taskflow(&self) -> &Taskflow {
        &self.tf
    }
}

/// Executes `dag` on the TBB-FlowGraph-style baseline: builds the node /
/// edge structure, `try_put`s every source, and waits.
pub fn run_flowgraph(dag: &Dag, pool: &Pool) {
    let (graph, sources) = FlowGraphBuilder::from_dag(dag);
    for s in sources {
        graph.try_put(s, pool);
    }
    graph.wait_for_all();
}

/// Executes `dag` on the OpenMP-style levelized baseline: levelizes (the
/// per-run data-structure reconstruction OpenTimer v1 pays), then runs
/// level by level with barriers.
pub fn run_levelized(dag: &Dag, pool: &Pool) {
    levelized::run_levelized(dag, pool, 0);
}

/// Executes `dag` sequentially on the calling thread.
pub fn run_sequential(dag: &Dag) {
    dag.run_sequential();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavefront::{self, WavefrontSpec};

    #[test]
    fn all_schedulers_agree_on_wavefront() {
        let spec = WavefrontSpec::new(8);
        let expected = wavefront::expected_checksum(spec);

        let (dag, sink) = wavefront::build(spec);
        run_sequential(&dag);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = wavefront::build(spec);
        let ex = Executor::new(4);
        run_rustflow(&dag, &ex);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = wavefront::build(spec);
        let pool = Pool::new(4);
        run_flowgraph(&dag, &pool);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = wavefront::build(spec);
        let pool = Pool::new(4);
        run_levelized(&dag, &pool);
        assert_eq!(sink.value(), expected);
    }

    #[test]
    fn reusable_adapter_runs_the_same_graph_repeatedly() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        // A small diamond whose tasks count executions: three batches over
        // the same frozen structure must run every task 1 + 2 + 4 times.
        let counter = StdArc::new(AtomicUsize::new(0));
        let mut dag = Dag::with_capacity(4);
        let mut ids = Vec::new();
        for _ in 0..4 {
            let c = StdArc::clone(&counter);
            ids.push(dag.add(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        dag.edge(ids[0], ids[1]);
        dag.edge(ids[0], ids[2]);
        dag.edge(ids[1], ids[3]);
        dag.edge(ids[2], ids[3]);

        let ex = Executor::new(4);
        let reusable = ReusableRustflow::new(&dag, &ex);
        for (batch, expected) in [(1u64, 4), (2, 12), (4, 28)] {
            reusable.run_n(batch).expect("batch failed");
            assert_eq!(counter.load(Ordering::Relaxed), expected);
        }
        assert_eq!(reusable.iterations(), 7);
    }

    #[test]
    fn all_schedulers_agree_on_randdag() {
        use crate::randdag::{self, RandDagSpec};
        let spec = RandDagSpec::new(2500);
        let expected = randdag::expected_checksum(spec);

        let (dag, sink) = randdag::build(spec);
        run_sequential(&dag);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = randdag::build(spec);
        let ex = Executor::new(4);
        run_rustflow(&dag, &ex);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = randdag::build(spec);
        let pool = Pool::new(4);
        run_flowgraph(&dag, &pool);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = randdag::build(spec);
        let pool = Pool::new(4);
        run_levelized(&dag, &pool);
        assert_eq!(sink.value(), expected);
    }
}
