//! Scheduler adapters: execute one scheduler-agnostic [`Dag`] under each
//! of the paper's four execution models.
//!
//! Per §IV-A, "our measure includes library ramp-up time, construction and
//! execution of the task dependency graph, and clean-up time" — so each
//! `run_*` function performs graph construction for its model from the
//! shared `Dag` description, executes, and tears down its per-run state.
//! Pools/executors (the "library ramp-up") are passed in so callers can
//! choose whether to include their creation in the timed region.

use rustflow::{Executor, Taskflow};
use std::sync::Arc;
use tf_baselines::{flowgraph::FlowGraphBuilder, levelized, Dag, Pool};

/// Executes `dag` on rustflow: builds a [`Taskflow`] (one task per node,
/// one `precede` per edge) and blocks until completion.
pub fn run_rustflow(dag: &Dag, executor: &Arc<Executor>) {
    let tf = Taskflow::with_executor(Arc::clone(executor));
    let tasks: Vec<rustflow::Task<'_>> = (0..dag.len())
        .map(|v| {
            let payload = dag.payload_of(v);
            tf.emplace(move || payload())
        })
        .collect();
    for v in 0..dag.len() {
        for &s in dag.successors_of(v) {
            tasks[v].precede(tasks[s as usize]);
        }
    }
    tf.wait_for_all();
}

/// Executes `dag` on the TBB-FlowGraph-style baseline: builds the node /
/// edge structure, `try_put`s every source, and waits.
pub fn run_flowgraph(dag: &Dag, pool: &Pool) {
    let (graph, sources) = FlowGraphBuilder::from_dag(dag);
    for s in sources {
        graph.try_put(s, pool);
    }
    graph.wait_for_all();
}

/// Executes `dag` on the OpenMP-style levelized baseline: levelizes (the
/// per-run data-structure reconstruction OpenTimer v1 pays), then runs
/// level by level with barriers.
pub fn run_levelized(dag: &Dag, pool: &Pool) {
    levelized::run_levelized(dag, pool, 0);
}

/// Executes `dag` sequentially on the calling thread.
pub fn run_sequential(dag: &Dag) {
    dag.run_sequential();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavefront::{self, WavefrontSpec};

    #[test]
    fn all_schedulers_agree_on_wavefront() {
        let spec = WavefrontSpec::new(8);
        let expected = wavefront::expected_checksum(spec);

        let (dag, sink) = wavefront::build(spec);
        run_sequential(&dag);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = wavefront::build(spec);
        let ex = Executor::new(4);
        run_rustflow(&dag, &ex);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = wavefront::build(spec);
        let pool = Pool::new(4);
        run_flowgraph(&dag, &pool);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = wavefront::build(spec);
        let pool = Pool::new(4);
        run_levelized(&dag, &pool);
        assert_eq!(sink.value(), expected);
    }

    #[test]
    fn all_schedulers_agree_on_randdag() {
        use crate::randdag::{self, RandDagSpec};
        let spec = RandDagSpec::new(2500);
        let expected = randdag::expected_checksum(spec);

        let (dag, sink) = randdag::build(spec);
        run_sequential(&dag);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = randdag::build(spec);
        let ex = Executor::new(4);
        run_rustflow(&dag, &ex);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = randdag::build(spec);
        let pool = Pool::new(4);
        run_flowgraph(&dag, &pool);
        assert_eq!(sink.value(), expected);

        let (dag, sink) = randdag::build(spec);
        let pool = Pool::new(4);
        run_levelized(&dag, &pool);
        assert_eq!(sink.value(), expected);
    }
}
