//! # tf-workloads — micro-benchmark workload generators (§IV-A)
//!
//! The paper's two micro-benchmarks as reusable, seeded workload builders:
//!
//! * [`wavefront`] — the regular compute pattern (2D block wavefront,
//!   Figure 6): each block precedes one block to the right and one below;
//! * [`randdag`] — the irregular compute pattern (random graph traversal
//!   with the paper's ≤4 in/out-degree bound).
//!
//! [`run`] executes one built workload under each of the paper's four
//! execution models (rustflow / TBB-style flow graph / OpenMP-style
//! levelized / sequential) so the Figure 7 and Table I harnesses compare
//! identical task graphs.

#![warn(missing_docs)]

pub mod kernels;
pub mod randdag;
pub mod run;
pub mod shapes;
pub mod wavefront;

pub use kernels::{nominal_work, Sink};
pub use randdag::RandDagSpec;
pub use wavefront::WavefrontSpec;
