//! Task-body kernels for the micro-benchmarks.
//!
//! The paper's wavefront blocks "perform a nominal operation with constant
//! time complexity"; we use a short integer-arithmetic spin whose result is
//! published through an atomic sink so the optimizer cannot delete it.

use std::sync::atomic::{AtomicU64, Ordering};

/// A few dozen integer operations; returns a value derived from `seed`.
#[inline]
pub fn nominal_work(seed: u64, iters: u32) -> u64 {
    let mut x = seed ^ 0xDEAD_BEEF_CAFE_BABE;
    if x == 0 {
        x = 1;
    }
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    x
}

/// A shared sink that keeps kernel results observable.
#[derive(Debug, Default)]
pub struct Sink(AtomicU64);

impl Sink {
    /// Creates a zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a value into the sink.
    #[inline]
    pub fn consume(&self, v: u64) {
        self.0.fetch_xor(v, Ordering::Relaxed);
    }

    /// Current folded value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_work_is_deterministic() {
        assert_eq!(nominal_work(42, 10), nominal_work(42, 10));
        assert_ne!(nominal_work(42, 10), nominal_work(43, 10));
        assert_ne!(nominal_work(42, 10), nominal_work(42, 11));
    }

    #[test]
    fn sink_accumulates() {
        let s = Sink::new();
        s.consume(5);
        s.consume(5);
        assert_eq!(s.value(), 0); // xor-folding
        s.consume(7);
        assert_eq!(s.value(), 7);
    }
}
