//! # tf-dnn — parallel DNN training substrate (§IV-C)
//!
//! The paper's machine-learning experiment: training MNIST classifiers
//! (784×32×32×10 and 784×64×32×16×8×10) with mini-batch SGD, decomposed
//! into the coarse-grained task pipeline of Figure 11 and executed by each
//! tasking library. This crate provides every piece:
//!
//! * [`matrix`] — the dense matrix library (Eigen stand-in);
//! * [`data`] — seeded synthetic MNIST (60K/10K-scale, 784 features, 10
//!   classes; see DESIGN.md for the substitution argument);
//! * [`net`] — the MLP math: forward, per-layer backward, SGD;
//! * [`pipeline`] — the Figure-11 task DAG (shuffle / forward / per-layer
//!   gradient / per-layer update) built as a scheduler-agnostic
//!   [`tf_baselines::Dag`], plus the sequential oracle every scheduler is
//!   tested to match bitwise.

#![warn(missing_docs)]

pub mod data;
pub mod matrix;
pub mod net;
pub mod pipeline;

pub use data::{synthetic_mnist, Dataset};
pub use matrix::Matrix;
pub use net::{arch_3layer, arch_5layer, Mlp};
pub use pipeline::{build_training_dag, train_sequential, TrainSpec};
