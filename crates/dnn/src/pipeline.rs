//! The paper's coarse-grained task decomposition for parallel DNN
//! training (Figure 11), built as a scheduler-agnostic [`Dag`].
//!
//! Per epoch `e` over `B` mini-batches and `L` weight layers:
//!
//! * `E_e_S` — shuffles the dataset into storage slot `e mod K`; runs as
//!   soon as the slot's previous tenant was fully consumed ("spare threads
//!   can start shuffling the data for subsequent epochs");
//! * `F_(e,j)` — forward pass of batch `j` plus the output delta;
//! * `G_(e,j,i)` — gradient of layer `i` (backward chain
//!   `F → G_{L-1} → … → G_0`);
//! * `U_(e,j,i)` — weight update of layer `i`, after `G_(e,j,i)`; runs
//!   concurrently with deeper `G`s (the paper's layer-by-layer pipeline);
//! * batch `j+1`'s forward waits on every `U_(e,j,i)` (SGD semantics).
//!
//! Task count per epoch = `1 + B·(1 + 2L)`: with `B = 600`, exactly the
//! paper's 4,201 (3-layer) and 6,601 (5-layer) tasks per epoch.
//!
//! Because the same `Dag` runs under rustflow, the TBB-style flow graph,
//! the OpenMP-style levelized executor, or sequentially, and because
//! every scheduler respects the same edges, all four produce **bitwise
//! identical** weights — which the tests assert against a plain
//! sequential SGD loop.

use crate::data::Dataset;
use crate::matrix::Matrix;
use crate::net::{activate_inplace, backward_layer_math, output_delta, LayerGrad, Mlp};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tf_baselines::Dag;

/// Training hyper-parameters (paper defaults: batch 100, lr 0.001).
#[derive(Debug, Clone, Copy)]
pub struct TrainSpec {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Number of shuffle storage slots ("twice the number of threads",
    /// capped by the harness for memory).
    pub storages: usize,
    /// Base seed for the per-epoch shuffles.
    pub seed: u64,
}

impl TrainSpec {
    /// The paper's hyper-parameters with a given epoch count.
    pub fn paper(epochs: usize) -> TrainSpec {
        TrainSpec {
            epochs,
            batch: 100,
            lr: 0.001,
            storages: 4,
            seed: 0xD11A,
        }
    }

    /// The deterministic shuffle seed of one epoch (shared by every
    /// decomposition so results match bitwise).
    pub fn shuffle_seed(&self, epoch: usize) -> u64 {
        self.seed ^ ((epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Shared mutable state of one pipelined training run. Every buffer is
/// written by exactly one task at a time (the DAG edges guarantee it);
/// the mutexes are uncontended and exist to keep the payloads safe Rust.
pub struct PipelineState {
    weights: Vec<Mutex<Matrix>>,
    biases: Vec<Mutex<Vec<f32>>>,
    /// Activations of the batch currently in flight (one batch at a time).
    acts: Mutex<Vec<Matrix>>,
    /// Labels of the batch currently in flight.
    labels: Mutex<Vec<u8>>,
    /// The delta flowing backward through the current batch.
    delta: Mutex<Matrix>,
    /// Per-layer gradients of the current batch.
    grads: Vec<Mutex<Option<LayerGrad>>>,
    /// Shuffle storage slots.
    storages: Vec<Mutex<Option<Dataset>>>,
    /// Per-batch losses in execution order.
    losses: Mutex<Vec<f64>>,
    lr: f32,
    num_layers: usize,
    /// Next epoch index, advanced by the epoch-graph's shuffle task — this
    /// is what makes the single-epoch DAG of [`build_epoch_dag`] reusable:
    /// the *structure* stays frozen while the epoch number lives here.
    epoch: AtomicUsize,
    /// Storage slot of the epoch currently in flight (`epoch % K`).
    slot: AtomicUsize,
}

impl PipelineState {
    fn new(net: &Mlp, spec: &TrainSpec) -> Arc<PipelineState> {
        Arc::new(PipelineState {
            weights: net.weights.iter().cloned().map(Mutex::new).collect(),
            biases: net.biases.iter().cloned().map(Mutex::new).collect(),
            acts: Mutex::new(Vec::new()),
            labels: Mutex::new(Vec::new()),
            delta: Mutex::new(Matrix::zeros(0, 0)),
            grads: (0..net.num_layers()).map(|_| Mutex::new(None)).collect(),
            storages: (0..spec.storages.max(1))
                .map(|_| Mutex::new(None))
                .collect(),
            losses: Mutex::new(Vec::new()),
            lr: spec.lr,
            num_layers: net.num_layers(),
            epoch: AtomicUsize::new(0),
            slot: AtomicUsize::new(0),
        })
    }

    /// Shuffles the dataset for epoch `e` into slot `e mod K` — the body
    /// of `E_e_S`.
    fn shuffle_epoch(&self, dataset: &Dataset, spec: &TrainSpec, e: usize) {
        let slot = e % self.storages.len();
        self.slot.store(slot, Ordering::Relaxed);
        *self.storages[slot].lock() = Some(dataset.shuffled(spec.shuffle_seed(e)));
    }

    /// Forward pass plus output delta of rows `[lo, hi)` — the body of
    /// `F_(e,j)`.
    fn forward_batch(&self, slot: usize, lo: usize, hi: usize) {
        let (images, batch_labels) = {
            let guard = self.storages[slot].lock();
            let ds = guard.as_ref().expect("shuffle storage empty");
            let (images, labels) = ds.batch(lo, hi);
            (images, labels.to_vec())
        };
        let mut acts = Vec::with_capacity(self.num_layers + 1);
        acts.push(images);
        for i in 0..self.num_layers {
            let mut z = {
                let w = self.weights[i].lock();
                acts[i].matmul_bt(&w)
            };
            z.add_row_vector(&self.biases[i].lock());
            activate_inplace(&mut z, i + 1 == self.num_layers);
            acts.push(z);
        }
        let (delta, loss) = output_delta(acts.last().expect("nonempty"), &batch_labels);
        *self.delta.lock() = delta;
        *self.acts.lock() = acts;
        *self.labels.lock() = batch_labels;
        self.losses.lock().push(loss);
    }

    /// Gradient of layer `i` for the batch in flight — the body of
    /// `G_(e,j,i)`.
    fn gradient(&self, i: usize) {
        let delta = self.delta.lock().clone();
        let a_prev = self.acts.lock()[i].clone();
        let (grad, dprev) = if i > 0 {
            let w = self.weights[i].lock();
            backward_layer_math(Some(&w), &delta, &a_prev)
        } else {
            backward_layer_math(None, &delta, &a_prev)
        };
        *self.grads[i].lock() = Some(grad);
        if let Some(d) = dprev {
            *self.delta.lock() = d;
        }
    }

    /// Weight update of layer `i` — the body of `U_(e,j,i)`.
    fn update(&self, i: usize) {
        let grad = self.grads[i]
            .lock()
            .take()
            .expect("gradient missing for update");
        self.weights[i].lock().add_scaled(&grad.dw, -self.lr);
        let mut bias = self.biases[i].lock();
        for (bv, &g) in bias.iter_mut().zip(&grad.db) {
            *bv -= self.lr * g;
        }
    }

    /// Extracts the trained network (call after the DAG completed).
    pub fn to_mlp(&self, sizes: &[usize]) -> Mlp {
        Mlp {
            sizes: sizes.to_vec(),
            weights: self.weights.iter().map(|w| w.lock().clone()).collect(),
            biases: self.biases.iter().map(|b| b.lock().clone()).collect(),
        }
    }

    /// Losses recorded per batch, in training order.
    pub fn losses(&self) -> Vec<f64> {
        self.losses.lock().clone()
    }
}

/// Builds the Figure-11 training DAG. Returns the DAG and the shared
/// state to extract results from after execution.
pub fn build_training_dag(
    net: &Mlp,
    dataset: Arc<Dataset>,
    spec: TrainSpec,
) -> (Dag, Arc<PipelineState>) {
    let state = PipelineState::new(net, &spec);
    let l = net.num_layers();
    let n = dataset.len();
    let b = spec.batch.max(1);
    let num_batches = n / b;
    assert!(num_batches > 0, "dataset smaller than one batch");
    let k = state.storages.len();

    let mut dag = Dag::with_capacity(spec.epochs * (1 + num_batches * (1 + 2 * l)));
    // Last forward task of each epoch (for storage-slot reuse edges).
    let mut last_forward_of_epoch: Vec<usize> = Vec::new();
    // The update tasks of the previous batch (next forward waits on them).
    let mut prev_updates: Vec<usize> = Vec::new();

    for e in 0..spec.epochs {
        let slot = e % k;
        // E_e_S: shuffle into the slot.
        let shuffle = {
            let state = Arc::clone(&state);
            let dataset = Arc::clone(&dataset);
            dag.add(move || state.shuffle_epoch(&dataset, &spec, e))
        };
        // Slot reuse: wait until epoch e-k fully consumed it.
        if e >= k {
            dag.edge(last_forward_of_epoch[e - k], shuffle);
        }

        for j in 0..num_batches {
            // F_(e,j): forward + output delta.
            let forward = {
                let state = Arc::clone(&state);
                let lo = j * b;
                dag.add(move || state.forward_batch(slot, lo, lo + b))
            };
            dag.edge(shuffle, forward);
            for &u in &prev_updates {
                dag.edge(u, forward);
            }
            prev_updates.clear();

            // Backward chain G_(e,j,L-1) → … → G_(e,j,0), each feeding its
            // update task U_(e,j,i).
            let mut prev_g = forward;
            for i in (0..l).rev() {
                let grad_task = {
                    let state = Arc::clone(&state);
                    dag.add(move || state.gradient(i))
                };
                dag.edge(prev_g, grad_task);
                let update_task = {
                    let state = Arc::clone(&state);
                    dag.add(move || state.update(i))
                };
                dag.edge(grad_task, update_task);
                prev_updates.push(update_task);
                prev_g = grad_task;
            }

            if j + 1 == num_batches {
                last_forward_of_epoch.push(forward);
            }
        }
    }
    (dag, state)
}

/// Builds the Figure-11 DAG for **one** epoch, designed to be frozen once
/// and executed `epochs` times (e.g. `Taskflow::run_n`) instead of
/// unrolling every epoch into one giant graph as [`build_training_dag`]
/// does.
///
/// The shuffle task is the graph's unique source; on each execution it
/// advances the shared epoch counter, derives that epoch's deterministic
/// shuffle seed and storage slot (`e mod K`), and the rest of the graph
/// reads the slot at runtime. Iterations of a reusable topology are
/// serialized by the scheduler, which subsumes the unrolled graph's
/// slot-reuse edges; the weights produced are bitwise identical to
/// [`train_sequential`] and to the unrolled DAG under every scheduler.
pub fn build_epoch_dag(
    net: &Mlp,
    dataset: Arc<Dataset>,
    spec: TrainSpec,
) -> (Dag, Arc<PipelineState>) {
    let state = PipelineState::new(net, &spec);
    let l = net.num_layers();
    let b = spec.batch.max(1);
    let num_batches = dataset.len() / b;
    assert!(num_batches > 0, "dataset smaller than one batch");

    let mut dag = Dag::with_capacity(1 + num_batches * (1 + 2 * l));
    // E_S: the unique source; picks this execution's epoch number.
    let shuffle = {
        let state = Arc::clone(&state);
        dag.add(move || {
            let e = state.epoch.fetch_add(1, Ordering::Relaxed);
            state.shuffle_epoch(&dataset, &spec, e);
        })
    };
    let mut prev_updates: Vec<usize> = Vec::new();
    for j in 0..num_batches {
        let forward = {
            let state = Arc::clone(&state);
            let lo = j * b;
            dag.add(move || {
                // The slot was published by the shuffle task, which every
                // forward transitively depends on.
                let slot = state.slot.load(Ordering::Relaxed);
                state.forward_batch(slot, lo, lo + b);
            })
        };
        dag.edge(shuffle, forward);
        for &u in &prev_updates {
            dag.edge(u, forward);
        }
        prev_updates.clear();

        let mut prev_g = forward;
        for i in (0..l).rev() {
            let grad_task = {
                let state = Arc::clone(&state);
                dag.add(move || state.gradient(i))
            };
            dag.edge(prev_g, grad_task);
            let update_task = {
                let state = Arc::clone(&state);
                dag.add(move || state.update(i))
            };
            dag.edge(grad_task, update_task);
            prev_updates.push(update_task);
            prev_g = grad_task;
        }
    }
    (dag, state)
}

/// Plain sequential SGD with the same shuffle schedule — the oracle the
/// pipelined decompositions must match bit for bit, and the Table III
/// sequential baseline.
pub fn train_sequential(net: &mut Mlp, dataset: &Dataset, spec: TrainSpec) -> Vec<f64> {
    let b = spec.batch.max(1);
    let num_batches = dataset.len() / b;
    let mut losses = Vec::with_capacity(spec.epochs * num_batches);
    for e in 0..spec.epochs {
        let shuffled = dataset.shuffled(spec.shuffle_seed(e));
        for j in 0..num_batches {
            let (images, labels) = shuffled.batch(j * b, (j + 1) * b);
            losses.push(net.train_batch(&images, labels, spec.lr));
        }
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_mnist;
    use crate::net::arch_3layer;
    use rustflow::Executor;
    use tf_baselines::Pool;

    fn small_spec(epochs: usize) -> TrainSpec {
        TrainSpec {
            epochs,
            batch: 50,
            lr: 0.01,
            storages: 2,
            seed: 99,
        }
    }

    #[test]
    fn task_count_matches_paper_formula() {
        let data = Arc::new(synthetic_mnist(600, 1));
        let net = Mlp::new(&arch_3layer(), 1);
        let spec = TrainSpec {
            epochs: 2,
            batch: 100,
            lr: 0.001,
            storages: 2,
            seed: 1,
        };
        let (dag, _state) = build_training_dag(&net, data, spec);
        // Per epoch: 1 shuffle + 6 batches * (1 F + 3 G + 3 U) = 43.
        assert_eq!(dag.len(), 2 * (1 + 6 * 7));
    }

    #[test]
    fn pipelined_sequential_dag_matches_plain_sgd() {
        let data = synthetic_mnist(200, 2);
        let spec = small_spec(3);
        let arch = [784, 12, 10];

        let mut oracle = Mlp::new(&arch, 7);
        let oracle_losses = train_sequential(&mut oracle, &data, spec);

        let net = Mlp::new(&arch, 7);
        let (dag, state) = build_training_dag(&net, Arc::new(data), spec);
        dag.run_sequential();
        let trained = state.to_mlp(&arch);

        assert_eq!(state.losses(), oracle_losses);
        for (w1, w2) in trained.weights.iter().zip(&oracle.weights) {
            assert_eq!(w1, w2, "weights diverged");
        }
        for (b1, b2) in trained.biases.iter().zip(&oracle.biases) {
            assert_eq!(b1, b2, "biases diverged");
        }
    }

    #[test]
    fn all_schedulers_produce_identical_weights() {
        let data = synthetic_mnist(150, 3);
        let spec = small_spec(2);
        let arch = [784, 10, 10];

        let mut oracle = Mlp::new(&arch, 11);
        train_sequential(&mut oracle, &data, spec);
        let data = Arc::new(data);

        // rustflow: the single-epoch DAG is frozen once and re-armed per
        // epoch, instead of unrolling every epoch into the graph.
        let net = Mlp::new(&arch, 11);
        let (dag, state) = build_epoch_dag(&net, Arc::clone(&data), spec);
        let ex = Executor::new(4);
        run_rustflow_n(&dag, &ex, spec.epochs as u64);
        let rf = state.to_mlp(&arch);

        // flow graph
        let net = Mlp::new(&arch, 11);
        let (dag, state) = build_training_dag(&net, Arc::clone(&data), spec);
        let pool = Pool::new(4);
        let (graph, sources) = tf_baselines::FlowGraphBuilder::from_dag(&dag);
        for s in sources {
            graph.try_put(s, &pool);
        }
        graph.wait_for_all();
        let fg = state.to_mlp(&arch);

        // levelized
        let net = Mlp::new(&arch, 11);
        let (dag, state) = build_training_dag(&net, Arc::clone(&data), spec);
        let pool = Pool::new(4);
        tf_baselines::run_levelized(&dag, &pool, 0);
        let lv = state.to_mlp(&arch);

        for trained in [&rf, &fg, &lv] {
            for (w1, w2) in trained.weights.iter().zip(&oracle.weights) {
                assert_eq!(w1, w2, "scheduler diverged from SGD oracle");
            }
        }
    }

    /// Minimal local copy of the rustflow adapter (tf-workloads depends on
    /// this crate's siblings, not vice versa): builds the taskflow once
    /// and executes it `n` times via the reusable-topology path.
    fn run_rustflow_n(dag: &Dag, ex: &Arc<Executor>, n: u64) {
        let tf = rustflow::Taskflow::with_executor(Arc::clone(ex));
        let tasks: Vec<rustflow::Task<'_>> = (0..dag.len())
            .map(|v| {
                let payload = dag.payload_of(v);
                tf.emplace(move || payload())
            })
            .collect();
        for v in 0..dag.len() {
            for &s in dag.successors_of(v) {
                tasks[v].precede(tasks[s as usize]);
            }
        }
        tf.run_n(n).get().expect("training run failed");
    }

    #[test]
    fn epoch_dag_iterated_matches_plain_sgd() {
        let data = synthetic_mnist(200, 2);
        let spec = small_spec(4);
        let arch = [784, 12, 10];

        let mut oracle = Mlp::new(&arch, 7);
        let oracle_losses = train_sequential(&mut oracle, &data, spec);

        // Sequential execution of the single-epoch DAG, `epochs` times —
        // the structure is built once, only the state re-arms.
        let net = Mlp::new(&arch, 7);
        let (dag, state) = build_epoch_dag(&net, Arc::new(data), spec);
        for _ in 0..spec.epochs {
            dag.run_sequential();
        }
        let trained = state.to_mlp(&arch);

        assert_eq!(state.losses(), oracle_losses);
        for (w1, w2) in trained.weights.iter().zip(&oracle.weights) {
            assert_eq!(w1, w2, "weights diverged");
        }
        for (b1, b2) in trained.biases.iter().zip(&oracle.biases) {
            assert_eq!(b1, b2, "biases diverged");
        }
    }

    #[test]
    fn pipelined_training_learns() {
        let data = synthetic_mnist(400, 5);
        let spec = TrainSpec {
            epochs: 10,
            batch: 50,
            lr: 0.05,
            storages: 2,
            seed: 123,
        };
        let arch = [784, 16, 10];
        let net = Mlp::new(&arch, 21);
        let (images, labels) = data.batch(0, 400);
        let before = net.accuracy(&images, labels);
        let (dag, state) = build_epoch_dag(&net, Arc::new(data.clone()), spec);
        let ex = Executor::new(2);
        run_rustflow_n(&dag, &ex, spec.epochs as u64);
        let after = state.to_mlp(&arch).accuracy(&images, labels);
        assert!(after > before.max(0.5), "no learning: {before} -> {after}");
    }

    #[test]
    fn storage_slots_are_reused() {
        // More epochs than slots forces the reuse edges to exist.
        let data = Arc::new(synthetic_mnist(100, 8));
        let spec = TrainSpec {
            epochs: 5,
            batch: 50,
            lr: 0.01,
            storages: 2,
            seed: 5,
        };
        let net = Mlp::new(&[784, 8, 10], 9);
        let (dag, state) = build_training_dag(&net, data, spec);
        dag.run_sequential();
        // 5 epochs * 2 batches = 10 losses recorded.
        assert_eq!(state.losses().len(), 10);
    }
}
