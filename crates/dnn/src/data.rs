//! Synthetic MNIST-like dataset (the paper's §IV-C substitution).
//!
//! We cannot ship MNIST, and the experiment measures training *runtime*,
//! not accuracy: what matters is the data's dimensions (784 features, 10
//! classes, 60K/10K split) and that the task decomposition has real
//! learning signal to chew on. We synthesize each class from a random
//! smooth prototype image plus per-sample Gaussian noise, which a small
//! MLP can learn to high accuracy — giving the tests a learning-progress
//! invariant while the benchmarks get byte-compatible workload shapes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feature dimension (28×28 images).
pub const FEATURES: usize = 784;
/// Number of classes.
pub const CLASSES: usize = 10;

/// A labelled dataset: one image per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n × 784` images, values in [0, 1].
    pub images: Matrix,
    /// `n` labels in `0..10`.
    pub labels: Vec<u8>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// A shuffled copy of this dataset (materialized, like the paper's
    /// per-epoch shuffle storages).
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut perm: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates.
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        Dataset {
            images: self.images.gather_rows(&perm),
            labels: perm.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Splits off the first `n` samples, returning `(head, tail)` —
    /// used to carve a test set from one generated distribution.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len());
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        (
            Dataset {
                images: self.images.gather_rows(&head),
                labels: self.labels[..n].to_vec(),
            },
            Dataset {
                images: self.images.gather_rows(&tail),
                labels: self.labels[n..].to_vec(),
            },
        )
    }

    /// Rows `[lo, hi)` as a batch.
    pub fn batch(&self, lo: usize, hi: usize) -> (Matrix, &[u8]) {
        let indices: Vec<usize> = (lo..hi).collect();
        (self.images.gather_rows(&indices), &self.labels[lo..hi])
    }
}

/// Generates `n` samples from 10 class prototypes (seeded).
pub fn synthetic_mnist(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Smooth-ish prototypes: random low-frequency bumps per class.
    let prototypes: Vec<Vec<f32>> = (0..CLASSES)
        .map(|_| {
            let cx: f32 = rng.gen_range(5.0..23.0);
            let cy: f32 = rng.gen_range(5.0..23.0);
            let sx: f32 = rng.gen_range(2.0..6.0);
            let sy: f32 = rng.gen_range(2.0..6.0);
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            (0..FEATURES)
                .map(|p| {
                    let x = (p % 28) as f32;
                    let y = (p / 28) as f32;
                    let g = (-((x - cx).powi(2) / (2.0 * sx * sx)
                        + (y - cy).powi(2) / (2.0 * sy * sy)))
                        .exp();
                    let wave = (0.3 * x + 0.2 * y + phase).sin() * 0.2 + 0.2;
                    (g + wave).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect();

    let mut images = Matrix::zeros(n, FEATURES);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = (i % CLASSES) as u8;
        labels.push(class);
        let proto = &prototypes[class as usize];
        let row = images.row_mut(i);
        for (px, &p) in row.iter_mut().zip(proto) {
            let noise: f32 = rng.gen_range(-0.15..0.15);
            *px = (p + noise).clamp(0.0, 1.0);
        }
    }
    Dataset { images, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let d = synthetic_mnist(100, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.images.rows(), 100);
        assert_eq!(d.images.cols(), FEATURES);
        assert!(d
            .images
            .as_slice()
            .iter()
            .all(|&x| (0.0..=1.0).contains(&x)));
        assert!(d.labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn classes_are_balanced() {
        let d = synthetic_mnist(1000, 2);
        let mut counts = [0usize; 10];
        for &l in &d.labels {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn generation_is_seeded() {
        let a = synthetic_mnist(50, 3);
        let b = synthetic_mnist(50, 3);
        assert_eq!(a.images, b.images);
        let c = synthetic_mnist(50, 4);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn shuffle_permutes_consistently() {
        let d = synthetic_mnist(200, 5);
        let s = d.shuffled(9);
        assert_eq!(s.len(), d.len());
        assert_ne!(s.labels, d.labels);
        // Same multiset of labels.
        let mut a = d.labels.clone();
        let mut b = s.labels.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Image rows still match their labels: row i of shuffled should
        // appear somewhere in the original with the same label... verify a
        // sampled row exactly matches some original row.
        let target = s.images.row(0);
        let found = (0..d.len()).any(|i| d.images.row(i) == target);
        assert!(found);
    }

    #[test]
    fn split_at_partitions() {
        let d = synthetic_mnist(100, 7);
        let (a, b) = d.split_at(30);
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 70);
        assert_eq!(a.images.row(0), d.images.row(0));
        assert_eq!(b.images.row(0), d.images.row(30));
        assert_eq!(b.labels[0], d.labels[30]);
    }

    #[test]
    fn batch_slices_rows() {
        let d = synthetic_mnist(30, 6);
        let (images, labels) = d.batch(10, 20);
        assert_eq!(images.rows(), 10);
        assert_eq!(labels.len(), 10);
        assert_eq!(images.row(0), d.images.row(10));
    }
}
