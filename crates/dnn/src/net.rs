//! Multi-layer perceptron: the forward/backward math shared by every
//! parallel decomposition (§IV-C).
//!
//! The paper trains two architectures, 784×32×32×10 and
//! 784×64×32×16×8×10, with mini-batch gradient descent (batch 100,
//! lr 0.001). Hidden layers use ReLU; the output layer is softmax with
//! cross-entropy loss. The per-layer backward step is exposed as
//! [`Mlp::backward_layer`] so the pipelined task decomposition (Fig. 11's
//! G_i tasks) calls exactly the same math the monolithic
//! [`Mlp::backward`] does.

use crate::matrix::Matrix;

/// The paper's 3-layer architecture: 784×32×32×10.
pub fn arch_3layer() -> Vec<usize> {
    vec![784, 32, 32, 10]
}

/// The paper's 5-layer architecture: 784×64×32×16×8×10.
pub fn arch_5layer() -> Vec<usize> {
    vec![784, 64, 32, 16, 8, 10]
}

/// Per-layer gradients of one backward step.
#[derive(Debug, Clone)]
pub struct LayerGrad {
    /// Weight gradient (out × in).
    pub dw: Matrix,
    /// Bias gradient.
    pub db: Vec<f32>,
}

/// A multi-layer perceptron. Weights are stored out×in; activations flow
/// as batch-row matrices.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer sizes, input first.
    pub sizes: Vec<usize>,
    /// One weight matrix per connection (out × in).
    pub weights: Vec<Matrix>,
    /// One bias vector per connection.
    pub biases: Vec<Vec<f32>>,
}

impl Mlp {
    /// He-style initialization from a seed.
    pub fn new(sizes: &[usize], seed: u64) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for (i, w) in sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let sigma = (2.0 / fan_in as f32).sqrt();
            weights.push(Matrix::randn(fan_out, fan_in, sigma, seed ^ (i as u64 + 1)));
            biases.push(vec![0.0; fan_out]);
        }
        Mlp {
            sizes: sizes.to_vec(),
            weights,
            biases,
        }
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass: returns post-activation values per layer,
    /// `acts[0] = input`, `acts[L] = softmax probabilities`.
    pub fn forward(&self, input: &Matrix) -> Vec<Matrix> {
        let mut acts = Vec::with_capacity(self.num_layers() + 1);
        acts.push(input.clone());
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let mut z = acts[i].matmul_bt(w);
            z.add_row_vector(b);
            if i + 1 == self.num_layers() {
                softmax_inplace(&mut z);
            } else {
                z.map_inplace(|x| x.max(0.0)); // ReLU
            }
            acts.push(z);
        }
        acts
    }

    /// Cross-entropy loss and the output delta `(p − onehot)/batch`.
    pub fn output_delta(&self, probs: &Matrix, labels: &[u8]) -> (Matrix, f64) {
        output_delta(probs, labels)
    }

    /// One layer of backpropagation: given the delta flowing into layer
    /// `i`'s output, produce that layer's gradients and the delta for
    /// layer `i-1` (`None` at the input). `a_prev` is the layer's input
    /// activation; ReLU masking uses `a_prev > 0` (valid because hidden
    /// activations are post-ReLU).
    pub fn backward_layer(
        &self,
        i: usize,
        delta: &Matrix,
        a_prev: &Matrix,
    ) -> (LayerGrad, Option<Matrix>) {
        let weight = (i > 0).then(|| &self.weights[i]);
        backward_layer_math(weight, delta, a_prev)
    }

    /// Full backward pass; returns per-layer gradients (layer 0 first)
    /// and the batch loss.
    pub fn backward(&self, acts: &[Matrix], labels: &[u8]) -> (Vec<LayerGrad>, f64) {
        let l = self.num_layers();
        let (mut delta, loss) = self.output_delta(&acts[l], labels);
        let mut grads: Vec<Option<LayerGrad>> = (0..l).map(|_| None).collect();
        for i in (0..l).rev() {
            let (g, dprev) = self.backward_layer(i, &delta, &acts[i]);
            grads[i] = Some(g);
            if let Some(d) = dprev {
                delta = d;
            }
        }
        (
            grads.into_iter().map(|g| g.expect("filled")).collect(),
            loss,
        )
    }

    /// SGD update of one layer.
    pub fn apply_layer(&mut self, i: usize, grad: &LayerGrad, lr: f32) {
        self.weights[i].add_scaled(&grad.dw, -lr);
        for (b, &g) in self.biases[i].iter_mut().zip(&grad.db) {
            *b -= lr * g;
        }
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, images: &Matrix, labels: &[u8]) -> f64 {
        let acts = self.forward(images);
        let probs = acts.last().expect("nonempty");
        let mut correct = 0usize;
        for (r, &label) in labels.iter().enumerate() {
            let row = probs.row(r);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty row");
            if argmax == label as usize {
                correct += 1;
            }
        }
        correct as f64 / labels.len() as f64
    }

    /// One sequential SGD step on a batch; returns the loss.
    pub fn train_batch(&mut self, images: &Matrix, labels: &[u8], lr: f32) -> f64 {
        let acts = self.forward(images);
        let (grads, loss) = self.backward(&acts, labels);
        for (i, g) in grads.iter().enumerate() {
            self.apply_layer(i, g, lr);
        }
        loss
    }
}

/// Cross-entropy loss and output delta `(p − onehot)/batch` — free
/// function form used by the pipelined task decomposition.
pub fn output_delta(probs: &Matrix, labels: &[u8]) -> (Matrix, f64) {
    let batch = probs.rows();
    assert_eq!(batch, labels.len());
    let mut delta = probs.clone();
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let p = delta.get(r, label as usize).max(1e-12);
        loss -= (p as f64).ln();
        *delta.get_mut(r, label as usize) -= 1.0;
    }
    delta.map_inplace(|x| x / batch as f32);
    (delta, loss / batch as f64)
}

/// One layer of backpropagation — free function form used by the
/// pipelined task decomposition (Fig. 11's `G_i`). Pass the layer's
/// weight matrix to obtain the upstream delta, or `None` at the input
/// layer.
pub fn backward_layer_math(
    weight: Option<&Matrix>,
    delta: &Matrix,
    a_prev: &Matrix,
) -> (LayerGrad, Option<Matrix>) {
    let dw = delta.matmul_at(a_prev);
    let db = delta.col_sums();
    let grad = LayerGrad { dw, db };
    let Some(w) = weight else {
        return (grad, None);
    };
    // delta_prev = (delta · W_i) ⊙ relu'(a_prev)
    let mut dprev = delta.matmul(w);
    for r in 0..dprev.rows() {
        for c in 0..dprev.cols() {
            if a_prev.get(r, c) <= 0.0 {
                *dprev.get_mut(r, c) = 0.0;
            }
        }
    }
    (grad, Some(dprev))
}

/// Applies ReLU (hidden) or softmax (output) in the forward pass — free
/// function form used by the pipelined task decomposition.
pub fn activate_inplace(z: &mut Matrix, is_output: bool) {
    if is_output {
        softmax_inplace(z);
    } else {
        z.map_inplace(|x| x.max(0.0));
    }
}

fn softmax_inplace(z: &mut Matrix) {
    for r in 0..z.rows() {
        let row = z.row_mut(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic_mnist, CLASSES};

    #[test]
    fn forward_shapes_and_probabilities() {
        let net = Mlp::new(&[784, 16, 10], 1);
        let data = synthetic_mnist(8, 1);
        let acts = net.forward(&data.images);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[2].rows(), 8);
        assert_eq!(acts[2].cols(), CLASSES);
        for r in 0..8 {
            let s: f32 = acts[2].row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            assert!(acts[2].row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn gradient_check_small_net() {
        // Numerical vs analytic gradient on a tiny network.
        let mut net = Mlp::new(&[6, 5, 4], 42);
        let input = Matrix::randn(3, 6, 1.0, 7);
        let mut input01 = input;
        input01.map_inplace(|x| x.abs().min(1.0));
        let labels = [0u8, 2, 3];

        let acts = net.forward(&input01);
        let (grads, _) = net.backward(&acts, &labels);

        let eps = 1e-2f32;
        let loss_fn = |net: &Mlp| {
            let acts = net.forward(&input01);
            net.output_delta(&acts[2], &labels).1
        };
        for (layer, grad) in grads.iter().enumerate().take(2) {
            for r in 0..net.weights[layer].rows() {
                for c in 0..net.weights[layer].cols() {
                    let orig = net.weights[layer].get(r, c);
                    *net.weights[layer].get_mut(r, c) = orig + eps;
                    let lp = loss_fn(&net);
                    *net.weights[layer].get_mut(r, c) = orig - eps;
                    let lm = loss_fn(&net);
                    *net.weights[layer].get_mut(r, c) = orig;
                    let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
                    let analytic = grad.dw.get(r, c);
                    let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                    assert!(
                        (numeric - analytic).abs() / denom < 0.15,
                        "layer {layer} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let data = synthetic_mnist(600, 11);
        let mut net = Mlp::new(&arch_3layer(), 5);
        let (images, labels) = data.batch(0, 600);
        let initial_acc = net.accuracy(&images, labels);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..30 {
            for b in 0..6 {
                let (bi, bl) = data.batch(b * 100, (b + 1) * 100);
                last_loss = net.train_batch(&bi, bl, 0.05);
                first_loss.get_or_insert(last_loss);
            }
        }
        let final_acc = net.accuracy(&images, labels);
        assert!(last_loss < first_loss.unwrap(), "loss did not drop");
        assert!(
            final_acc > initial_acc.max(0.5),
            "no learning: {initial_acc} -> {final_acc}"
        );
    }

    #[test]
    fn backward_layer_matches_backward() {
        let net = Mlp::new(&[8, 6, 4], 3);
        let input = Matrix::randn(5, 8, 0.5, 9);
        let labels = [1u8, 0, 3, 2, 1];
        let acts = net.forward(&input);
        let (grads, _) = net.backward(&acts, &labels);
        // Recompute layer by layer manually.
        let (delta2, _) = net.output_delta(&acts[2], &labels);
        let (g1, dprev) = net.backward_layer(1, &delta2, &acts[1]);
        let (g0, none) = net.backward_layer(0, &dprev.unwrap(), &acts[0]);
        assert!(none.is_none());
        assert_eq!(g1.dw, grads[1].dw);
        assert_eq!(g0.dw, grads[0].dw);
    }

    #[test]
    fn architectures_match_paper() {
        assert_eq!(arch_3layer(), vec![784, 32, 32, 10]);
        assert_eq!(arch_5layer(), vec![784, 64, 32, 16, 8, 10]);
        let n3 = Mlp::new(&arch_3layer(), 1);
        assert_eq!(n3.num_layers(), 3);
        let n5 = Mlp::new(&arch_5layer(), 1);
        assert_eq!(n5.num_layers(), 5);
    }
}
