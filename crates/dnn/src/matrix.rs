//! A dense row-major `f32` matrix — the Eigen stand-in (§IV-C).
//!
//! The paper encapsulates "all matrix operations ... to standalone function
//! calls written with Eigen"; this module provides those calls: matmul
//! (with the transposed variants backprop needs), element-wise maps,
//! row/column reductions, and Gaussian initialization. The inner matmul
//! loop is the cache-friendly i-k-j order with the `k`-row of `b` streamed
//! linearly, which is the textbook layout-aware ordering the perf guide
//! recommends.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Gaussian(0, sigma) entries from a seeded RNG (Box–Muller).
    pub fn randn(rows: usize, cols: usize, sigma: f32, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen();
            sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Copies the rows at `indices` into a new matrix (batch gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &src) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// `self · other` (m×k by k×n).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (m×k by n×k → m×n); the forward-pass shape
    /// `X · Wᵀ` with weights stored out×in.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *out.get_mut(i, j) = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` (k×m by k×n → m×n); the gradient shape `δᵀ · A`.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Adds a row vector to every row (bias broadcast).
    pub fn add_row_vector(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(v) {
                *x += b;
            }
        }
    }

    /// `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += scale * y;
        }
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Column sums (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
        sums
    }

    /// Frobenius norm (tests / debugging).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_matmul_of_transpose() {
        let a = Matrix::randn(4, 5, 1.0, 1);
        let b = Matrix::randn(3, 5, 1.0, 2);
        let bt = Matrix::from_fn(5, 3, |r, c| b.get(c, r));
        let direct = a.matmul_bt(&b);
        let via_t = a.matmul(&bt);
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_at_equals_transpose_matmul() {
        let a = Matrix::randn(6, 4, 1.0, 3);
        let b = Matrix::randn(6, 3, 1.0, 4);
        let at = Matrix::from_fn(4, 6, |r, c| a.get(c, r));
        let direct = a.matmul_at(&b);
        let via_t = at.matmul(&b);
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_vector(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn gather_rows_copies() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = m(2, 2, &[1., 2., 3., 4.]);
        a.add_scaled(&b, -0.5);
        assert_eq!(a.as_slice(), &[-0.5, -1., -1.5, -2.]);
    }

    #[test]
    fn randn_is_seeded_and_roughly_centered() {
        let a = Matrix::randn(50, 50, 1.0, 7);
        let b = Matrix::randn(50, 50, 1.0, 7);
        assert_eq!(a, b);
        let mean: f32 = a.as_slice().iter().sum::<f32>() / 2500.0;
        assert!(mean.abs() < 0.1, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
