//! Cross-crate invariant: every scheduler in the repository — rustflow,
//! the TBB-style flow graph, the OpenMP-style levelized executor, the
//! OpenMP-`task depend` runtime, and the sequential oracle — executes the
//! same randomized DAGs in dependency order, running every task exactly
//! once.

use proptest::prelude::*;
use rustflow::Executor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tf_baselines::{Dag, FlowGraphBuilder, Pool, TaskDepRegion};

struct Probe {
    clock: Arc<AtomicUsize>,
    stamps: Vec<Arc<AtomicUsize>>,
    runs: Vec<Arc<AtomicUsize>>,
}

impl Probe {
    fn new(n: usize) -> Probe {
        Probe {
            clock: Arc::new(AtomicUsize::new(0)),
            stamps: (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect(),
            runs: (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect(),
        }
    }

    fn dag(&self, edges: &[(usize, usize)]) -> Dag {
        let mut dag = Dag::with_capacity(self.stamps.len());
        for i in 0..self.stamps.len() {
            let clock = Arc::clone(&self.clock);
            let stamp = Arc::clone(&self.stamps[i]);
            let run = Arc::clone(&self.runs[i]);
            dag.add(move || {
                run.fetch_add(1, Ordering::SeqCst);
                stamp.store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            });
        }
        for &(u, v) in edges {
            dag.edge(u, v);
        }
        dag
    }

    fn verify(&self, edges: &[(usize, usize)]) -> Result<(), TestCaseError> {
        for (i, run) in self.runs.iter().enumerate() {
            prop_assert_eq!(run.load(Ordering::SeqCst), 1, "task {} runs", i);
        }
        let s: Vec<usize> = self
            .stamps
            .iter()
            .map(|x| x.load(Ordering::SeqCst))
            .collect();
        for &(u, v) in edges {
            prop_assert!(s[u] < s[v], "edge ({},{}) violated", u, v);
        }
        Ok(())
    }
}

fn arb_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0usize..n, 0usize..n), 0..80).prop_map(move |pairs| {
                let mut edges: Vec<(usize, usize)> = pairs
                    .into_iter()
                    .filter(|&(u, v)| u != v)
                    .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
                    .collect();
                edges.sort_unstable();
                edges.dedup();
                edges
            });
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rustflow_respects_random_dags((n, edges) in arb_edges()) {
        let probe = Probe::new(n);
        let dag = probe.dag(&edges);
        let ex = Executor::new(3);
        tf_workloads::run::run_rustflow(&dag, &ex);
        probe.verify(&edges)?;
    }

    #[test]
    fn flowgraph_respects_random_dags((n, edges) in arb_edges()) {
        let probe = Probe::new(n);
        let dag = probe.dag(&edges);
        let pool = Pool::new(3);
        let (graph, sources) = FlowGraphBuilder::from_dag(&dag);
        for s in sources {
            graph.try_put(s, &pool);
        }
        graph.wait_for_all();
        probe.verify(&edges)?;
    }

    #[test]
    fn levelized_respects_random_dags((n, edges) in arb_edges()) {
        let probe = Probe::new(n);
        let dag = probe.dag(&edges);
        let pool = Pool::new(3);
        tf_baselines::run_levelized(&dag, &pool, 0);
        probe.verify(&edges)?;
    }

    #[test]
    fn taskdep_respects_random_dags((n, edges) in arb_edges()) {
        let probe = Probe::new(n);
        let dag = probe.dag(&edges);
        let pool = Pool::new(3);
        let region = TaskDepRegion::new(&pool);
        // Nodes are issued in topological id order; declare depend(in:)
        // on each predecessor's address and depend(out:) on one's own.
        for v in 0..dag.len() {
            let payload = dag.payload_of(v);
            let mut ins: Vec<u64> = Vec::new();
            for &(u, w) in &edges {
                if w == v {
                    ins.push(u as u64);
                }
            }
            region.task(&ins, &[v as u64], move || payload());
        }
        region.wait_all();
        probe.verify(&edges)?;
    }

    #[test]
    fn sequential_respects_random_dags((n, edges) in arb_edges()) {
        let probe = Probe::new(n);
        let dag = probe.dag(&edges);
        dag.run_sequential();
        probe.verify(&edges)?;
    }
}

/// The micro-benchmark checksum agreement at a non-trivial size, across
/// every scheduler (the deterministic core of Figure 7's setup).
#[test]
fn micro_benchmarks_checksum_agreement() {
    use tf_workloads::randdag::RandDagSpec;
    use tf_workloads::wavefront::{self, WavefrontSpec};

    let spec = WavefrontSpec::new(24);
    let expected = wavefront::expected_checksum(spec);
    let ex = Executor::new(3);
    let pool = Pool::new(3);
    for run in 0..3 {
        let (dag, sink) = wavefront::build(spec);
        match run {
            0 => tf_workloads::run::run_rustflow(&dag, &ex),
            1 => tf_workloads::run::run_flowgraph(&dag, &pool),
            _ => tf_workloads::run::run_levelized(&dag, &pool),
        }
        assert_eq!(sink.value(), expected, "run {run}");
    }

    let spec = RandDagSpec::new(4_000);
    let expected = tf_workloads::randdag::expected_checksum(spec);
    for run in 0..3 {
        let (dag, sink) = tf_workloads::randdag::build(spec);
        match run {
            0 => tf_workloads::run::run_rustflow(&dag, &ex),
            1 => tf_workloads::run::run_flowgraph(&dag, &pool),
            _ => tf_workloads::run::run_levelized(&dag, &pool),
        }
        assert_eq!(sink.value(), expected, "run {run}");
    }
}
