//! System tests of the VLSI timing analyzer: engine agreement on
//! generated designs, incremental-vs-full equivalence over long modifier
//! sequences, and the monotonicity physics of the delay model.

use proptest::prelude::*;
use rustflow::Executor;
use tf_baselines::Pool;
use tf_timer::{CircuitSpec, DesignModifier, Engine, GateId, Timer};

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn engines_agree_on_tv80_scale_design() {
    let circuit = CircuitSpec::tv80().scaled(0.2).generate();
    let n = circuit.num_gates();
    let seq = Timer::new(circuit.clone());
    seq.full_update(&Engine::Sequential);
    let pool = Pool::new(4);
    let v1 = Timer::new(circuit.clone());
    v1.full_update(&Engine::V1Levelized(&pool));
    let ex = Executor::new(4);
    let v2 = Timer::new(circuit);
    v2.full_update(&Engine::V2Rustflow(&ex));
    for g in 0..n as GateId {
        assert!(approx(seq.arrival(g), v1.arrival(g)), "v1 arrival at {g}");
        assert!(approx(seq.arrival(g), v2.arrival(g)), "v2 arrival at {g}");
        assert!(approx(seq.slew(g), v2.slew(g)), "v2 slew at {g}");
    }
    assert!(approx(seq.worst_slack(), v1.worst_slack()));
    assert!(approx(seq.worst_slack(), v2.worst_slack()));
    assert_eq!(seq.critical_path(), v2.critical_path());
}

#[test]
fn long_incremental_sequence_stays_consistent() {
    // 60 modifier iterations: v2-incremental must equal full recompute.
    let circuit = CircuitSpec::small_test(800, 31).generate();
    let ex = Executor::new(3);
    let mut incremental = Timer::new(circuit.clone());
    incremental.full_update(&Engine::V2Rustflow(&ex));
    let mut oracle = Timer::new(circuit);
    oracle.full_update(&Engine::Sequential);

    let mut m1 = DesignModifier::new(incremental.circuit(), 7);
    let mut m2 = DesignModifier::new(oracle.circuit(), 7);
    for iter in 0..60 {
        let s1 = m1.apply(&mut incremental);
        let s2 = m2.apply(&mut oracle);
        assert_eq!(s1, s2);
        incremental.incremental_update(&s1, &Engine::V2Rustflow(&ex));
        // Oracle recomputes everything from scratch.
        oracle.full_update(&Engine::Sequential);
        assert!(
            approx(incremental.worst_slack(), oracle.worst_slack()),
            "iteration {iter}: {} vs {}",
            incremental.worst_slack(),
            oracle.worst_slack()
        );
    }
    // And the entire state, not just the headline number.
    for g in 0..incremental.circuit().num_gates() as GateId {
        assert!(
            approx(incremental.arrival(g), oracle.arrival(g)),
            "gate {g}"
        );
    }
}

#[test]
fn resizing_towards_larger_drive_speeds_up_its_cone() {
    let circuit = CircuitSpec::small_test(500, 5).generate();
    let mut timer = Timer::new(circuit);
    timer.full_update(&Engine::Sequential);
    // Find a combinational gate on the critical path and upsize it.
    let path = timer.critical_path();
    let victim = path.iter().copied().find(|&g| {
        tf_timer::GateKind::COMBINATIONAL.contains(&timer.circuit().gates[g as usize].kind)
            && timer.circuit().gates[g as usize].drive < 4.0
    });
    let Some(victim) = victim else {
        return; // pathological path of ports only — nothing to test
    };
    let endpoint = *path.last().expect("nonempty");
    let before = timer.arrival(endpoint);
    let seeds = timer.resize_gate(victim, 4.0);
    timer.incremental_update(&seeds, &Engine::Sequential);
    let after = timer.arrival(endpoint);
    assert!(
        after < before,
        "upsizing a critical gate did not speed up the endpoint: {before} -> {after}"
    );
}

#[test]
fn worst_slack_decreases_with_shorter_clock() {
    let mut spec = CircuitSpec::small_test(300, 9);
    spec.clock_period = 5000.0;
    let slow = Timer::new(spec.generate());
    slow.full_update(&Engine::Sequential);
    spec.clock_period = 500.0;
    let fast = Timer::new(spec.generate());
    fast.full_update(&Engine::Sequential);
    assert!(
        approx(slow.worst_slack() - fast.worst_slack(), 5000.0 - 500.0),
        "slack must shift by exactly the period difference"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_equals_full_on_random_designs(gates in 100usize..600, seed in 0u64..1000, mod_seed in 0u64..1000) {
        let circuit = CircuitSpec::small_test(gates, seed).generate();
        let mut inc = Timer::new(circuit.clone());
        inc.full_update(&Engine::Sequential);
        let mut m = DesignModifier::new(inc.circuit(), mod_seed);
        for _ in 0..5 {
            let seeds = m.apply(&mut inc);
            inc.incremental_update(&seeds, &Engine::Sequential);
        }
        // Rebuild an oracle circuit with the final drives and recompute.
        let mut oracle_circuit = circuit;
        for (g, og) in inc.circuit().gates.iter().zip(oracle_circuit.gates.iter_mut()) {
            og.drive = g.drive;
        }
        let oracle = Timer::new(oracle_circuit);
        oracle.full_update(&Engine::Sequential);
        for g in 0..inc.circuit().num_gates() as GateId {
            prop_assert!(approx(inc.arrival(g), oracle.arrival(g)), "gate {}", g);
            prop_assert!(approx(inc.slew(g), oracle.slew(g)), "slew {}", g);
        }
        prop_assert!(approx(inc.worst_slack(), oracle.worst_slack()));
    }
}

#[test]
fn backward_pass_slacks_consistent_across_engines() {
    let circuit = CircuitSpec::small_test(600, 77).generate();
    let n = circuit.num_gates();

    let seq = Timer::new(circuit.clone());
    seq.full_update(&Engine::Sequential);
    seq.update_required(&Engine::Sequential);

    let pool = Pool::new(3);
    let v1 = Timer::new(circuit.clone());
    v1.full_update(&Engine::V1Levelized(&pool));
    v1.update_required(&Engine::V1Levelized(&pool));

    let ex = Executor::new(3);
    let v2 = Timer::new(circuit);
    v2.full_update(&Engine::V2Rustflow(&ex));
    v2.update_required(&Engine::V2Rustflow(&ex));

    for g in 0..n as GateId {
        let a = seq.required(g);
        let b = v1.required(g);
        let c = v2.required(g);
        if a.is_finite() {
            assert!(approx(a, b), "v1 required at {g}: {a} vs {b}");
            assert!(approx(a, c), "v2 required at {g}: {a} vs {c}");
        } else {
            assert!(!b.is_finite() && !c.is_finite(), "finiteness at {g}");
        }
    }
}

#[test]
fn worst_gate_slack_matches_worst_endpoint_slack() {
    let circuit = CircuitSpec::small_test(800, 123).generate();
    let timer = Timer::new(circuit);
    timer.full_update(&Engine::Sequential);
    timer.update_required(&Engine::Sequential);

    // The minimum per-gate slack over the design equals the worst
    // endpoint slack: slack is constant along the critical path.
    let n = timer.circuit().num_gates() as GateId;
    let min_gate_slack = (0..n)
        .map(|g| timer.gate_slack(g))
        .fold(f64::INFINITY, f64::min);
    assert!(
        approx(min_gate_slack, timer.worst_slack()),
        "{min_gate_slack} vs {}",
        timer.worst_slack()
    );

    // Every gate on the critical path carries (approximately) the worst
    // slack.
    for &g in &timer.critical_path() {
        let s = timer.gate_slack(g);
        // DFF endpoints report their D-side check through endpoint_slack,
        // not gate_slack (which is Q-side); skip them here.
        if timer.circuit().gates[g as usize].kind == tf_timer::GateKind::Dff {
            continue;
        }
        assert!(
            s <= timer.worst_slack() + 1e-6,
            "critical-path gate {g} has slack {s} > worst {}",
            timer.worst_slack()
        );
    }
}

#[test]
fn unconstrained_gates_have_infinite_slack() {
    use tf_timer::{Circuit, GateKind};
    // inp -> inv -> (dangling inv2)  and  inp -> buf -> out
    let mut c = Circuit::new(1000.0);
    let inp = c.add_gate(GateKind::Input, 1.0);
    let inv = c.add_gate(GateKind::Inv, 1.0);
    let dangling = c.add_gate(GateKind::Inv, 1.0);
    let buf = c.add_gate(GateKind::Buf, 1.0);
    let out = c.add_gate(GateKind::Output, 1.0);
    c.connect(inp, inv);
    c.connect(inv, dangling);
    c.connect(inp, buf);
    c.connect(buf, out);
    let timer = Timer::new(c);
    timer.full_update(&Engine::Sequential);
    timer.update_required(&Engine::Sequential);
    // The dangling inverter constrains nothing.
    assert!(timer.gate_slack(dangling).is_infinite());
    // The constrained path has finite slack everywhere.
    for g in [inp, buf, out] {
        assert!(timer.gate_slack(g).is_finite(), "gate {g}");
    }
    // inv only feeds the dangling gate -> also unconstrained.
    assert!(timer.required(inv).is_infinite());
}
