//! System tests of the DNN substrate: the Figure-11 pipeline trained by
//! every scheduler agrees bitwise with plain SGD at a realistic scale,
//! learns the synthetic distribution, and matches the paper's task-count
//! arithmetic.

use rustflow::Executor;
use std::sync::Arc;
use tf_baselines::Pool;
use tf_dnn::net::{arch_3layer, arch_5layer};
use tf_dnn::pipeline::{build_training_dag, train_sequential, TrainSpec};
use tf_dnn::{synthetic_mnist, Mlp};

#[test]
fn paper_task_counts_per_epoch() {
    // "Each epoch consists of 4201 tasks and 6601 tasks for the
    // three-layer DNN and the five-layer DNN" — with 60K images and
    // batch 100 (600 batches).
    let data = Arc::new(synthetic_mnist(60_000, 1));
    let spec = TrainSpec::paper(1);
    let net3 = Mlp::new(&arch_3layer(), 1);
    let (dag3, _) = build_training_dag(&net3, Arc::clone(&data), spec);
    assert_eq!(dag3.len(), 4_201);
    let net5 = Mlp::new(&arch_5layer(), 1);
    let (dag5, _) = build_training_dag(&net5, data, spec);
    assert_eq!(dag5.len(), 6_601);
}

#[test]
fn five_layer_pipeline_matches_sgd_bitwise_under_parallel_run() {
    let data = synthetic_mnist(600, 3);
    let arch = arch_5layer();
    let spec = TrainSpec {
        epochs: 3,
        batch: 100,
        lr: 0.02,
        storages: 3,
        seed: 17,
    };
    let mut oracle = Mlp::new(&arch, 23);
    let oracle_losses = train_sequential(&mut oracle, &data, spec);

    let net = Mlp::new(&arch, 23);
    let (dag, state) = build_training_dag(&net, Arc::new(data), spec);
    let ex = Executor::new(4);
    tf_workloads::run::run_rustflow(&dag, &ex);
    let trained = state.to_mlp(&arch);
    assert_eq!(state.losses(), oracle_losses);
    for (w1, w2) in trained.weights.iter().zip(&oracle.weights) {
        assert_eq!(w1, w2);
    }
}

#[test]
fn training_learns_held_out_distribution() {
    let (test, train) = synthetic_mnist(2_000, 0xAB).split_at(400);
    let arch = arch_3layer();
    let spec = TrainSpec {
        epochs: 12,
        batch: 100,
        lr: 0.05,
        storages: 2,
        seed: 9,
    };
    let net = Mlp::new(&arch, 31);
    let (test_images, test_labels) = test.batch(0, test.len());
    let before = net.accuracy(&test_images, test_labels);
    let (dag, state) = build_training_dag(&net, Arc::new(train), spec);
    let pool = Pool::new(4);
    tf_workloads::run::run_flowgraph(&dag, &pool);
    let after = state.to_mlp(&arch).accuracy(&test_images, test_labels);
    assert!(
        after > 0.8 && after > before,
        "held-out accuracy too low: {before} -> {after}"
    );
}

#[test]
fn losses_decrease_over_training() {
    let data = synthetic_mnist(1_000, 0xCD);
    let arch = arch_3layer();
    let spec = TrainSpec {
        epochs: 8,
        batch: 100,
        lr: 0.05,
        storages: 2,
        seed: 77,
    };
    let net = Mlp::new(&arch, 41);
    let (dag, state) = build_training_dag(&net, Arc::new(data), spec);
    let ex = Executor::new(2);
    tf_workloads::run::run_rustflow(&dag, &ex);
    let losses = state.losses();
    assert_eq!(losses.len(), 8 * 10);
    let first: f64 = losses[..10].iter().sum::<f64>() / 10.0;
    let last: f64 = losses[losses.len() - 10..].iter().sum::<f64>() / 10.0;
    assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");
}

#[test]
fn storages_bound_memory_but_not_correctness() {
    // 1 storage slot fully serializes shuffle/training; many slots let
    // shuffles run ahead. Results must be identical either way.
    let data = synthetic_mnist(300, 0xEF);
    let arch = [784usize, 8, 10];
    let base = TrainSpec {
        epochs: 4,
        batch: 50,
        lr: 0.03,
        storages: 1,
        seed: 3,
    };
    let ex = Executor::new(4);
    let mut results = Vec::new();
    for storages in [1, 2, 4] {
        let spec = TrainSpec { storages, ..base };
        let net = Mlp::new(&arch, 51);
        let (dag, state) = build_training_dag(&net, Arc::new(data.clone()), spec);
        tf_workloads::run::run_rustflow(&dag, &ex);
        results.push(state.to_mlp(&arch));
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0].weights, pair[1].weights);
    }
}
