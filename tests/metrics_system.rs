//! System tests of the software-cost tooling against the repository's own
//! sources, plus the COCOMO ↔ paper calibration at whole-project scale.

use std::path::Path;
use tf_metrics::{analyze, count_sloc, estimate_paper, SoftwareCost};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repository_is_measurable_and_substantial() {
    let crates = repo_root().join("crates");
    let cost = SoftwareCost::measure_dir("workspace", &crates);
    assert!(
        cost.sloc > 5_000,
        "workspace unexpectedly small: {} SLOC",
        cost.sloc
    );
    assert!(cost.complexity.num_functions() > 200);
    assert!(cost.cc_max() >= 5);
    // The COCOMO estimate scales with the size.
    let est = cost.cocomo();
    assert!(est.effort_person_years > 0.5);
    assert!(est.cost_dollars > 50_000.0);
}

#[test]
fn core_crate_smaller_than_whole_workspace() {
    let core = SoftwareCost::measure_dir("core", &repo_root().join("crates/core/src"));
    let all = SoftwareCost::measure_dir("all", &repo_root().join("crates"));
    assert!(core.sloc > 500);
    assert!(core.sloc < all.sloc);
}

#[test]
fn analyzer_handles_this_test_file() {
    let src = std::fs::read_to_string(repo_root().join("tests/metrics_system.rs")).unwrap();
    let sloc = count_sloc(&src);
    assert!(sloc > 20);
    let report = analyze(&src);
    assert!(report.num_functions() >= 4);
    assert!(report
        .functions
        .iter()
        .any(|f| f.name == "analyzer_handles_this_test_file"));
}

#[test]
fn cocomo_matches_paper_table2_exactly() {
    // The calibration the whole Table II reproduction rests on.
    let v1 = estimate_paper(9_123);
    assert!((v1.effort_person_years - 2.04).abs() < 0.005);
    assert!((v1.developers - 2.90).abs() < 0.02);
    let v2 = estimate_paper(4_482);
    assert!((v2.effort_person_years - 0.97).abs() < 0.005);
    // Cost ratio between v1 and v2 ≈ paper's 275,287 / 130,523.
    let ratio = v1.cost_dollars / v2.cost_dollars;
    assert!((ratio - 275_287.0 / 130_523.0).abs() < 0.02, "{ratio}");
}

#[test]
fn loc_ordering_of_micro_benchmark_impls_holds() {
    // The Table I conclusion, asserted as a test so regressions in the
    // implementations keep the programmability story honest.
    let dir = repo_root().join("crates/bench/src/impls");
    let loc = |f: &str| {
        count_sloc(&std::fs::read_to_string(dir.join(f)).unwrap_or_else(|e| panic!("{f}: {e}")))
    };
    // Traversal: sequential < rustflow < tbb-style.
    assert!(loc("traversal_seq.rs") < loc("traversal_rustflow.rs"));
    assert!(loc("traversal_rustflow.rs") < loc("traversal_flowgraph.rs"));
    // DNN: sequential < rustflow <= tbb-style < openmp-style.
    assert!(loc("dnn_seq.rs") < loc("dnn_rustflow.rs"));
    assert!(loc("dnn_rustflow.rs") <= loc("dnn_flowgraph.rs"));
    assert!(loc("dnn_flowgraph.rs") < loc("dnn_openmp.rs"));
}
