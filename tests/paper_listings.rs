//! End-to-end reproductions of the paper's code listings, asserting the
//! dependency semantics each listing demonstrates.

use rustflow::{Executor, Taskflow};
use std::sync::Arc;

use parking_lot::Mutex;

type Log = Arc<Mutex<Vec<&'static str>>>;

fn ordered_log() -> (Log, impl Fn(&'static str) -> Box<dyn FnMut() + Send>) {
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let l = Arc::clone(&log);
    let maker = move |name: &'static str| -> Box<dyn FnMut() + Send> {
        let l = Arc::clone(&l);
        Box::new(move || l.lock().push(name))
    };
    (log, maker)
}

fn pos(log: &[&str], name: &str) -> usize {
    log.iter()
        .position(|&x| x == name)
        .unwrap_or_else(|| panic!("{name} did not run"))
}

#[test]
fn listing1_four_task_diamond() {
    let (log, task) = ordered_log();
    let tf = Taskflow::new();
    let (a, b, c, d) = rustflow::emplace!(tf, task("A"), task("B"), task("C"), task("D"));
    a.precede([b, c]); // A runs before B and C
    b.precede(d); // B runs before D
    c.precede(d); // C runs before D
    tf.wait_for_all(); // block until finish
    let log = log.lock();
    assert_eq!(log.len(), 4);
    assert!(pos(&log, "A") < pos(&log, "B"));
    assert!(pos(&log, "A") < pos(&log, "C"));
    assert!(pos(&log, "B") < pos(&log, "D"));
    assert!(pos(&log, "C") < pos(&log, "D"));
}

#[test]
fn listing3_figure2_static_graph() {
    let (log, task) = ordered_log();
    let tf = Taskflow::new();
    let (a0, a1, a2, a3, b0, b1, b2) = rustflow::emplace!(
        tf,
        task("a0"),
        task("a1"),
        task("a2"),
        task("a3"),
        task("b0"),
        task("b1"),
        task("b2"),
    );
    a0.precede(a1);
    a1.precede([a2, b2]);
    a2.precede(a3);
    b0.precede(b1);
    b1.precede([a2, b2]);
    b2.precede(a3);
    tf.wait_for_all();
    let log = log.lock();
    assert_eq!(log.len(), 7);
    assert!(pos(&log, "a0") < pos(&log, "a1"));
    assert!(pos(&log, "a1") < pos(&log, "a2") && pos(&log, "b1") < pos(&log, "a2"));
    assert!(pos(&log, "a1") < pos(&log, "b2") && pos(&log, "b1") < pos(&log, "b2"));
    assert!(pos(&log, "a2") < pos(&log, "a3") && pos(&log, "b2") < pos(&log, "a3"));
    assert!(pos(&log, "b0") < pos(&log, "b1"));
}

#[test]
fn listing6_blocking_and_nonblocking_dispatch() {
    let (log, task) = ordered_log();
    let tf = Taskflow::new();
    let (a, b) = rustflow::emplace!(tf, task("A"), task("B"));
    a.precede(b); // task A runs before task B
    tf.wait_for_all(); // block until finish

    let (a2, b2) = rustflow::emplace!(tf, task("newA"), task("newB"));
    b2.precede(a2); // task B runs before task A this time
    let shared_future = tf.dispatch();
    // ... do something to overlap the graph execution ...
    shared_future.wait(); // block until finish
    assert!(shared_future.get().is_ok());

    let log = log.lock();
    assert!(pos(&log, "A") < pos(&log, "B"));
    assert!(pos(&log, "newB") < pos(&log, "newA"));
}

#[test]
fn listing7_figure4_dynamic_graph() {
    let (log, task) = ordered_log();
    let tf = Taskflow::new();
    let (a, c, d) = rustflow::emplace!(tf, task("A"), task("C"), task("D"));
    let log2 = Arc::clone(&log);
    let b = tf.emplace_subflow(move |sf| {
        log2.lock().push("B");
        let l1 = Arc::clone(&log2);
        let l2 = Arc::clone(&log2);
        let l3 = Arc::clone(&log2);
        let b1 = sf.emplace(move || l1.lock().push("B1"));
        let b2 = sf.emplace(move || l2.lock().push("B2"));
        let b3 = sf.emplace(move || l3.lock().push("B3"));
        b1.precede(b3);
        b2.precede(b3);
    });
    a.precede([b, c]);
    b.precede(d);
    c.precede(d);
    tf.wait_for_all();
    let log = log.lock();
    assert_eq!(log.len(), 7);
    assert!(pos(&log, "A") < pos(&log, "B"));
    assert!(pos(&log, "A") < pos(&log, "C"));
    // The joined subflow completes before D.
    assert!(pos(&log, "B1") < pos(&log, "B3"));
    assert!(pos(&log, "B2") < pos(&log, "B3"));
    assert!(pos(&log, "B3") < pos(&log, "D"));
    assert!(pos(&log, "C") < pos(&log, "D"));
}

#[test]
fn figure5_nested_subflow_dump() {
    let tf = Taskflow::new();
    tf.set_name("Fig5");
    tf.emplace_subflow(|sf| {
        let a1 = sf.emplace(|| {}).name("A1");
        let a2 = sf
            .emplace_subflow(|inner| {
                inner.emplace(|| {}).name("A2_1");
                inner.emplace(|| {}).name("A2_2");
            })
            .name("A2");
        a1.precede(a2);
    })
    .name("A");
    tf.wait_for_all();
    let dot = tf.dump_topologies();
    assert!(dot.contains("Subflow_A"));
    assert!(dot.contains("Subflow_A2"));
    assert!(dot.contains("A2_1"));
    assert!(dot.contains("A2_2"));
    // Two nested clusters, like the paper's Figure 5 visualization.
    assert_eq!(dot.matches("subgraph cluster_").count(), 2);
}

#[test]
fn executor_shared_like_the_animation_use_case() {
    // §III-E: a main taskflow handles renders, others handle resource
    // loading, all on one executor.
    let executor = Executor::new(2);
    let render = Taskflow::with_executor(Arc::clone(&executor));
    let loader = Taskflow::with_executor(Arc::clone(&executor));
    let (log, task) = ordered_log();
    render.emplace(task("frame"));
    loader.emplace(task("texture"));
    let f1 = render.dispatch();
    let f2 = loader.dispatch();
    f1.wait();
    f2.wait();
    let log = log.lock();
    assert_eq!(log.len(), 2);
}
