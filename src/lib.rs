//! Umbrella crate for the rustflow reproduction workspace.
//!
//! This root package exists to host the repository-level `examples/` and
//! `tests/` directories required by the project layout; the real library
//! code lives in the `crates/` members. It re-exports the public crates so
//! examples and integration tests can use one import path.

pub use rustflow;
pub use tf_baselines as baselines;
pub use tf_dnn as dnn;
pub use tf_metrics as metrics;
pub use tf_timer as timer;
pub use tf_workloads as workloads;
