//! Offline mini property-testing harness exposing the `proptest` API
//! subset this workspace's tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` attribute, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`Just`], `prop_assert!`/`prop_assert_eq!`, and
//! string strategies written as simple character-class regexes
//! (`"[abc]{0,40}"`).
//!
//! No shrinking is performed: a failing case panics with the generated
//! inputs in the panic message (every strategy value is `Debug`). Cases are
//! generated from a fixed seed, so failures reproduce deterministically.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Number-of-cases configuration (mirrors `proptest::test_runner`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving every strategy (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategy from a simplified regex: one character class with an
/// optional `{lo,hi}` repetition, e.g. `"[a-z ]{0,40}"`. Plain strings
/// without a class generate themselves verbatim.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_char_class(self);
        if alphabet.is_empty() {
            return (*self).to_string();
        }
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi); empty alphabet when the
/// pattern has no character class.
fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pattern.chars().collect();
    let Some(open) = bytes.iter().position(|&c| c == '[') else {
        return (Vec::new(), 0, 0);
    };
    let Some(close_rel) = bytes[open..].iter().position(|&c| c == ']') else {
        return (Vec::new(), 0, 0);
    };
    let close = open + close_rel;
    let mut alphabet = Vec::new();
    let class = &bytes[open + 1..close];
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                if let Some(c) = char::from_u32(c) {
                    alphabet.push(c);
                }
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    // Optional {lo,hi} repetition; default is exactly one.
    let rest: String = bytes[close + 1..].iter().collect();
    if let Some(inner) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        let mut parts = inner.splitn(2, ',');
        let lo = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        let hi = parts.next().and_then(|s| s.parse().ok()).unwrap_or(lo);
        (alphabet, lo, hi.max(lo))
    } else {
        (alphabet, 1, 1)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with random length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
        TestRng,
    };
}

/// A failed property case; property bodies are `Result<(), TestCaseError>`
/// closures so `prop_assert!` can early-return and helpers can use `?`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Asserts a condition inside a property; on failure the case returns an
/// `Err(TestCaseError)` that the harness reports with the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)*),
                lhs,
                rhs
            )));
        }
    }};
}

/// Declares property tests: each `fn name(x in strategy, ...)` body runs
/// for `cases` generated inputs (default config when the attribute is
/// absent). Failing inputs are printed via the panic message.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, stringify!($name), |rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Runs `f` for `cases` seeds derived from the property name; used by
/// [`proptest!`], public only for macro expansion.
pub fn run_cases(cases: u32, name: &str, f: impl Fn(&mut TestRng) -> Result<(), TestCaseError>) {
    // Stable per-property seed: failures reproduce run-to-run.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases {
        let mut rng = TestRng::new(seed ^ ((case as u64) << 32));
        if let Err(e) = f(&mut rng) {
            panic!("property `{name}` failed on case {case}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn char_class_parses() {
        let (alpha, lo, hi) = super::parse_char_class("[a-c x]{0,5}");
        assert_eq!(alpha, vec!['a', 'b', 'c', ' ', 'x']);
        assert_eq!((lo, hi), (0, 5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 2usize..60, x in -5i64..5) {
            prop_assert!((2..60).contains(&n));
            prop_assert!((-5..5).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u8..4, 1..400)) {
            prop_assert!(!v.is_empty() && v.len() < 400);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn flat_map_and_tuples((n, pairs) in (2usize..40).prop_flat_map(|n| {
            (Just(n), collection::vec((0usize..n, 0usize..n), 0..80))
        })) {
            for (u, v) in pairs {
                prop_assert!(u < n && v < n);
            }
        }

        #[test]
        fn string_class_strategy(s in "[a-z ]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }
}
