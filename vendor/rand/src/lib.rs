//! Offline shim exposing the subset of the `rand` 0.8 API this workspace
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! across platforms, which is all the workloads need (they compare parallel
//! implementations against sequential oracles driven by the same seed; no
//! statistical-quality claims are made).

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience extension methods over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (f64::draw(self)) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_ranges!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5usize..23);
            assert!((5..23).contains(&v));
            let f = r.gen_range(-0.15f32..0.15);
            assert!((-0.15..0.15).contains(&f));
            let i = r.gen_range(0u64..=2);
            assert!(i <= 2);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
