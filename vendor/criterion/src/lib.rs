//! Offline micro-bench shim exposing the `criterion` API subset this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`], and [`Throughput`].
//!
//! Instead of criterion's statistical engine it runs a short warm-up, then
//! a fixed measurement window, and prints mean time per iteration (and
//! per-element throughput when configured). Good enough to compare
//! schedulers on this container; not a statistics package.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the closure given to `bench_function`; `iter` measures.
pub struct Bencher<'a> {
    measure: &'a mut Measurement,
}

/// One benchmark's collected timing.
struct Measurement {
    iters: u64,
    elapsed: Duration,
}

impl Bencher<'_> {
    /// Calls `f` repeatedly for the measurement window and records timing.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: a few calls to fault in caches and spawn lazy state.
        for _ in 0..2 {
            black_box(f());
        }
        let window = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window {
            black_box(f());
            iters += 1;
        }
        self.measure.iters = iters.max(1);
        self.measure.elapsed = start.elapsed();
    }
}

/// The bench context handed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Number of samples criterion would take (advisory in this shim).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measures one function and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut m = Measurement {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut Bencher { measure: &mut m });
        let per_iter = m.elapsed.as_secs_f64() / m.iters.max(1) as f64;
        let label = if self.name.is_empty() {
            id.into_id()
        } else {
            format!("{}/{}", self.name, id.into_id())
        };
        match self.throughput {
            Some(Throughput::Elements(n)) if n > 0 => println!(
                "bench {label}: {:.3} ms/iter ({:.1} ns/elem, {} iters)",
                per_iter * 1e3,
                per_iter * 1e9 / n as f64,
                m.iters
            ),
            _ => println!(
                "bench {label}: {:.3} ms/iter ({} iters)",
                per_iter * 1e3,
                m.iters
            ),
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a group of bench target functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::new("noop", 10), |b| {
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
    }

    #[test]
    fn group_runs_targets() {
        let mut c = Criterion::default().sample_size(10);
        target(&mut c);
        c.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
    }
}
