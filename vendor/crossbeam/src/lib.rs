//! Offline shim for the `crossbeam::deque` subset this workspace uses as a
//! *differential-testing oracle*: a straightforward mutex-protected deque
//! with the same observable semantics as `crossbeam-deque`'s LIFO worker
//! (owner pushes/pops at the back, stealers take from the front). The tests
//! that use it compare sequential operation schedules, so a reference
//! implementation — not a lock-free one — is exactly what's wanted.

/// Work-stealing deque API (mirrors `crossbeam_deque`).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// A race was lost; the caller may retry.
        Retry,
    }

    /// Owner handle: single-threaded push/pop end of the deque.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    /// Thief handle: steals from the opposite end.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker (pop returns the most recent push).
        pub fn new_lifo() -> Worker<T> {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                q: Arc::clone(&self.q),
            }
        }

        /// Pushes an item at the owner's end.
        pub fn push(&self, item: T) {
            self.q.lock().unwrap().push_back(item);
        }

        /// Pops the most recently pushed item.
        pub fn pop(&self) -> Option<T> {
            self.q.lock().unwrap().pop_back()
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.q.lock().unwrap().len()
        }

        /// `true` when no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest item.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn lifo_owner_fifo_thief() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.len(), 1);
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }
    }
}
