//! Offline shim over [`std::sync`] exposing the subset of the `parking_lot`
//! API this workspace uses (`Mutex`, `RwLock`, `Condvar` with non-poisoning
//! guards returned straight from `lock()`/`read()`/`write()`).
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the handful of third-party crates it depends on as
//! thin, API-compatible stand-ins (see `vendor/` in the repo root). The
//! semantics match `parking_lot` for every call site in this tree; poisoned
//! std locks are transparently recovered because parking_lot has no
//! poisoning.

use std::sync;

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable whose `wait` re-borrows the parking_lot-style
/// [`MutexGuard`] in place instead of consuming it.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guarded mutex and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Waits until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        let inner = guard.0.take().expect("guard taken");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_guard_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
