//! The wavefront computing pattern (§IV-A, Figure 6): a 2D matrix of
//! blocks where each block depends on its left and top neighbours — the
//! paper's regular micro-benchmark, here computing a real
//! dynamic-programming recurrence.
//!
//! ```text
//! cargo run --release --example wavefront [dim] [threads]
//! ```

use rustflow::{Executor, Taskflow};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn recurrence(top: u64, left: u64, id: usize) -> u64 {
    top.max(left)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(id as u64 | 1)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dim: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    println!(
        "wavefront: {dim}x{dim} blocks ({} tasks), {threads} threads",
        dim * dim
    );
    let executor = Executor::new(threads);
    let tf = Taskflow::with_executor(executor);

    // value[r][c] = f(value[r-1][c], value[r][c-1]); each cell is written
    // by exactly one task, and the wavefront edges order neighbour reads
    // after the writes, so relaxed atomics suffice (the scheduler's join
    // counters provide the happens-before edges).
    let grid: Arc<Vec<AtomicU64>> = Arc::new((0..dim * dim).map(|_| AtomicU64::new(0)).collect());
    let start = Instant::now();
    let tasks: Vec<_> = (0..dim * dim)
        .map(|id| {
            let grid = Arc::clone(&grid);
            tf.emplace(move || {
                let (r, c) = (id / dim, id % dim);
                let top = if r > 0 {
                    grid[id - dim].load(Ordering::Relaxed)
                } else {
                    0
                };
                let left = if c > 0 {
                    grid[id - 1].load(Ordering::Relaxed)
                } else {
                    0
                };
                grid[id].store(recurrence(top, left, id), Ordering::Relaxed);
            })
        })
        .collect();
    for r in 0..dim {
        for c in 0..dim {
            let id = r * dim + c;
            if c + 1 < dim {
                tasks[id].precede(tasks[id + 1]);
            }
            if r + 1 < dim {
                tasks[id].precede(tasks[id + dim]);
            }
        }
    }
    tf.wait_for_all();
    let elapsed = start.elapsed();
    let corner = grid[dim * dim - 1].load(Ordering::Relaxed);
    println!("bottom-right value: {corner:#x}");
    println!(
        "construction+execution: {:.2} ms",
        elapsed.as_secs_f64() * 1e3
    );

    // Oracle check: the sequential recurrence gives the identical value.
    let mut seq = vec![0u64; dim * dim];
    for id in 0..dim * dim {
        let (r, c) = (id / dim, id % dim);
        let top = if r > 0 { seq[id - dim] } else { 0 };
        let left = if c > 0 { seq[id - 1] } else { 0 };
        seq[id] = recurrence(top, left, id);
    }
    assert_eq!(corner, seq[dim * dim - 1], "parallel result diverged");
    println!("verified against sequential recurrence");
}
