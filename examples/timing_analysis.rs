//! Incremental VLSI static timing analysis (§II / §IV-B): the paper's
//! motivating application. Generates a tv80-scale synthetic design, runs
//! a full timing update with the v2 (rustflow) engine, then plays an
//! optimization loop of design modifiers with incremental updates —
//! checking against the sequential oracle as it goes.
//!
//! ```text
//! cargo run --release --example timing_analysis [gates] [iterations]
//! ```

use rustflow::Executor;
use std::time::Instant;
use tf_timer::{CircuitSpec, DesignModifier, Engine, Timer};

fn main() {
    let mut args = std::env::args().skip(1);
    let gates: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5_300);
    let iterations: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);

    let mut spec = CircuitSpec::tv80();
    spec.gates = gates;
    let circuit = spec.generate();
    println!(
        "design: {} gates, {} nets, {} edges, {} endpoints",
        circuit.num_gates(),
        circuit.num_nets(),
        circuit.num_edges(),
        circuit.endpoints().count()
    );

    let executor = Executor::new(4);
    let engine = Engine::V2Rustflow(&executor);
    let mut timer = Timer::new(circuit.clone());

    let start = Instant::now();
    let tasks = timer.full_update(&engine);
    println!(
        "full update: {tasks} tasks in {:.2} ms, worst slack {:.2} ps",
        start.elapsed().as_secs_f64() * 1e3,
        timer.worst_slack()
    );
    let path = timer.critical_path();
    println!(
        "critical path: {} gates, ends at arrival {:.2} ps",
        path.len(),
        timer.arrival(*path.last().expect("nonempty path"))
    );

    // The optimization loop: modify, then query (incremental update).
    let mut modifier = DesignModifier::new(timer.circuit(), 42);
    let mut oracle = Timer::new(circuit);
    let mut oracle_modifier = DesignModifier::new(oracle.circuit(), 42);
    oracle.full_update(&Engine::Sequential);

    let mut total_tasks = 0;
    let loop_start = Instant::now();
    for i in 0..iterations {
        let seeds = modifier.apply(&mut timer);
        let oracle_seeds = oracle_modifier.apply(&mut oracle);
        assert_eq!(seeds, oracle_seeds);
        let n = timer.incremental_update(&seeds, &engine);
        oracle.incremental_update(&oracle_seeds, &Engine::Sequential);
        total_tasks += n;
        let slack = timer.worst_slack();
        assert!(
            (slack - oracle.worst_slack()).abs() < 1e-9,
            "engine diverged from oracle at iteration {i}"
        );
        if i < 5 || i + 1 == iterations {
            println!("iteration {i}: {n} tasks, worst slack {slack:.2} ps");
        }
    }
    println!(
        "{iterations} incremental iterations, {total_tasks} total tasks in {:.2} ms (all slacks verified against the sequential oracle)",
        loop_start.elapsed().as_secs_f64() * 1e3
    );
}
