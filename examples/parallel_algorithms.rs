//! The built-in algorithm collection (§III-F): `parallel_for`, `reduce`,
//! `transform`, and `transform_reduce` spliced into one larger task
//! dependency graph — the composition idiom the paper advocates.
//!
//! ```text
//! cargo run --release --example parallel_algorithms
//! ```

use rustflow::algorithm::{parallel_for, reduce, transform, transform_reduce};
use rustflow::{Executor, SharedVec, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    let executor = Executor::new(4);
    let mut tf = Taskflow::with_executor(executor);
    tf.set_name("algorithms");
    let n = 1_000_000;

    // Stage 1: parallel_for filling a histogram of digit sums.
    let histogram: Arc<Vec<AtomicUsize>> = Arc::new((0..64).map(|_| AtomicUsize::new(0)).collect());
    let h = Arc::clone(&histogram);
    let (pf_src, pf_dst) = parallel_for(&tf, 0..n, 0, move |i| {
        let bucket = i % 64;
        h[bucket].fetch_add(1, Ordering::Relaxed);
    });

    // Stage 2: transform a data vector (runs only after stage 1).
    let src = SharedVec::from_fn(n, |i| i as f64);
    let dst = SharedVec::new(vec![0f64; n]);
    let (tr_src, tr_dst) = transform(&tf, &src, &dst, 0, |&x| (x + 1.0).ln());
    pf_dst.precede(tr_src);

    // Stage 3: reduce the transformed vector (after stage 2).
    let (rd_src, rd_dst, sum) = transform_reduce(&tf, &dst, 0, 0.0f64, |&x| x, |a, b| a + b);
    tr_dst.precede(rd_src);

    // Stage 4: an index reduction in parallel with everything above.
    let (_i_src, i_dst, index_sum) = reduce(&tf, 0..n, 0, 0usize, |acc, i| acc + i, |a, b| a + b);

    // A final task after both reductions.
    let done = tf.emplace(|| println!("pipeline complete")).name("done");
    rd_dst.precede(done);
    i_dst.precede(done);
    let _ = pf_src;

    tf.wait_for_all();

    let total: usize = histogram.iter().map(|h| h.load(Ordering::Relaxed)).sum();
    assert_eq!(total, n);
    println!("histogram total: {total}");

    let log_sum = sum.take().expect("reduced");
    let expected: f64 = (0..n).map(|i| ((i + 1) as f64).ln()).sum();
    assert!((log_sum - expected).abs() / expected < 1e-9);
    println!("sum of ln(i+1): {log_sum:.3}");

    assert_eq!(index_sum.take(), Some(n * (n - 1) / 2));
    println!("index sum: {}", n * (n - 1) / 2);

    // Reclaim the transformed data: drop retained topologies first.
    drop(src);
    tf.gc();
    let data = dst.into_vec();
    println!("dst[10] = {:.4} (expected {:.4})", data[10], 11f64.ln());
}
