//! Dynamic tasking (§III-D): subflows spawned at runtime, joined and
//! detached, plus nesting — the paper's Figure 4 and Figure 5.
//!
//! ```text
//! cargo run --release --example dynamic_pipeline
//! ```

use rustflow::{Executor, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    let executor = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&executor));
    tf.set_name("dynamic");
    let progress = Arc::new(AtomicUsize::new(0));

    // Figure 4: static tasks A, C, D and a dynamic task B that spawns
    // B1, B2, B3 at runtime; the subflow joins B, so D observes it.
    let (a, c, d) = rustflow::emplace!(tf, || println!("A"), || println!("C"), || println!(
        "D (runs after the whole subflow of B)"
    ),);
    let p = Arc::clone(&progress);
    let b = tf.emplace_subflow(move |sf| {
        println!("B (spawning B1, B2, B3)");
        let p1 = Arc::clone(&p);
        let p3 = Arc::clone(&p);
        let b1 = sf.emplace(move || {
            p1.fetch_add(1, Ordering::SeqCst);
            println!("  B1");
        });
        let b2 = sf.emplace(|| println!("  B2"));
        let b3 = sf.emplace(move || {
            p3.fetch_add(1, Ordering::SeqCst);
            println!("  B3 (after B1 and B2)");
        });
        b1.precede(b3);
        b2.precede(b3);
        // sf.detach() would let D run without waiting for B1..B3; the
        // default join makes them part of B's completion.
    });
    a.name("A").precede([b, c]);
    b.name("B").precede(d);
    c.name("C").precede(d);
    d.name("D");
    tf.wait_for_all();
    assert_eq!(progress.load(Ordering::SeqCst), 2);

    // Nested subflows (Figure 5): a dynamic task whose child is itself
    // dynamic. The post-run DOT dump shows the nested clusters.
    let tf2 = Taskflow::with_executor(executor);
    tf2.set_name("nested");
    tf2.emplace_subflow(|sf| {
        let a1 = sf.emplace(|| println!("A1")).name("A1");
        let a2 = sf
            .emplace_subflow(|inner| {
                inner.emplace(|| println!("  A2_1")).name("A2_1");
                inner.emplace(|| println!("  A2_2")).name("A2_2");
            })
            .name("A2");
        a1.precede(a2);
    })
    .name("A");
    tf2.wait_for_all();
    println!("--- nested subflow dump (Figure 5) ---");
    println!("{}", tf2.dump_topologies());
}
