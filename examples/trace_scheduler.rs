//! Observing the scheduler (§III-G spirit): attach a tracer to the
//! executor, run a wavefront, and export a Chrome trace
//! (`chrome://tracing` / https://ui.perfetto.dev) showing which worker
//! ran which task when.
//!
//! ```text
//! cargo run --release --example trace_scheduler [dim] [threads]
//! ```

use rustflow::{Executor, ExecutorObserver, Taskflow, Tracer};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let dim: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let executor = Executor::new(threads);
    let tracer = Arc::new(Tracer::new(threads));
    executor.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);

    let tf = Taskflow::with_executor(Arc::clone(&executor));
    let tasks: Vec<_> = (0..dim * dim)
        .map(|id| {
            tf.emplace(move || {
                // A small amount of real work so spans are visible.
                let mut x = id as u64 + 1;
                for _ in 0..2_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(x);
            })
            .name(format!("block_{}_{}", id / dim, id % dim))
        })
        .collect();
    for r in 0..dim {
        for c in 0..dim {
            let id = r * dim + c;
            if c + 1 < dim {
                tasks[id].precede(tasks[id + 1]);
            }
            if r + 1 < dim {
                tasks[id].precede(tasks[id + dim]);
            }
        }
    }
    tf.wait_for_all();

    let events = tracer.take_events();
    println!(
        "traced {} task executions across {} workers",
        events.len(),
        threads
    );
    // Per-worker load summary.
    let mut per_worker = vec![(0usize, 0u64); threads];
    for e in &events {
        per_worker[e.worker].0 += 1;
        per_worker[e.worker].1 += e.end_us - e.begin_us;
    }
    for (w, (count, busy_us)) in per_worker.iter().enumerate() {
        println!("worker {w}: {count} tasks, {busy_us} us busy");
    }

    // Re-run with the tracer still installed to produce the JSON export.
    let tf2 = Taskflow::with_executor(executor);
    for i in 0..64 {
        let t = tf2.emplace(std::thread::yield_now).name(format!("t{i}"));
        let _ = t;
    }
    tf2.wait_for_all();
    let json = tracer.chrome_trace_json();
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/trace.json", &json).expect("cannot write trace");
    println!(
        "chrome trace with {} events -> results/trace.json (open in ui.perfetto.dev)",
        json.matches("\"ph\":\"X\"").count()
    );
}
