//! Parallel DNN training (§IV-C): the paper's Figure-11 coarse-grained
//! task decomposition on a synthetic-MNIST classifier, with accuracy
//! evaluation and a bitwise check against plain SGD.
//!
//! ```text
//! cargo run --release --example dnn_training [epochs] [threads]
//! ```

use rustflow::Executor;
use std::sync::Arc;
use std::time::Instant;
use tf_dnn::net::arch_3layer;
use tf_dnn::pipeline::{build_training_dag, train_sequential, TrainSpec};
use tf_dnn::{synthetic_mnist, Mlp};
use tf_workloads::run::run_rustflow;

fn main() {
    let mut args = std::env::args().skip(1);
    let epochs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // One generated distribution, split into held-out test + train.
    let (test, train) = synthetic_mnist(7_000, 0xDA7A).split_at(1_000);
    let arch = arch_3layer();
    let spec = TrainSpec {
        epochs,
        batch: 100,
        lr: 0.05,
        storages: 2 * threads,
        seed: 0x5EED,
    };
    let layers = arch.len() - 1;
    let batches = train.len() / spec.batch;
    println!(
        "training 784x32x32x10 on {} images, {} epochs x {} batches -> {} tasks/epoch",
        train.len(),
        epochs,
        batches,
        1 + batches * (1 + 2 * layers)
    );

    // Parallel: the Figure-11 DAG on the rustflow executor.
    let net = Mlp::new(&arch, 7);
    let (test_images, test_labels) = test.batch(0, test.len());
    let initial_acc = net.accuracy(&test_images, test_labels);
    let (dag, state) = build_training_dag(&net, Arc::new(train.clone()), spec);
    let executor = Executor::new(threads);
    let start = Instant::now();
    run_rustflow(&dag, &executor);
    let elapsed = start.elapsed();
    let trained = state.to_mlp(&arch);
    let final_acc = trained.accuracy(&test_images, test_labels);
    println!(
        "parallel training: {:.2} s over {} tasks; test accuracy {:.1}% -> {:.1}%",
        elapsed.as_secs_f64(),
        dag.len(),
        initial_acc * 100.0,
        final_acc * 100.0
    );

    // Oracle: plain SGD with the same shuffle schedule must agree bitwise.
    let mut oracle = Mlp::new(&arch, 7);
    let start = Instant::now();
    train_sequential(&mut oracle, &train, spec);
    println!(
        "sequential training: {:.2} s (speed-up {:.2}x)",
        start.elapsed().as_secs_f64(),
        start.elapsed().as_secs_f64() / elapsed.as_secs_f64()
    );
    assert_eq!(
        oracle.weights, trained.weights,
        "parallel and sequential SGD diverged"
    );
    println!("parallel weights match sequential SGD bitwise");
    let losses = state.losses();
    println!(
        "loss: first batch {:.4} -> last batch {:.4}",
        losses.first().expect("nonempty"),
        losses.last().expect("nonempty")
    );
}
