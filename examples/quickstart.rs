//! Quickstart: the paper's Listing 1 — a four-task diamond.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rustflow::Taskflow;

fn main() {
    let tf = Taskflow::new();
    tf.set_name("quickstart");

    // Create a task dependency graph of four tasks A, B, C, and D
    // (Listing 1 of the paper).
    let (a, b, c, d) = rustflow::emplace!(
        tf,
        || println!("Task A"),
        || println!("Task B"),
        || println!("Task C"),
        || println!("Task D"),
    );
    a.name("A").precede([b, c]); // A runs before B and C
    b.name("B").precede(d); //      B runs before D
    c.name("C").precede(d); //      C runs before D
    d.name("D");

    // Inspect the graph before running it (§III-G): paste the DOT output
    // into GraphViz or viz-js.com.
    println!("--- task dependency graph (DOT) ---");
    println!("{}", tf.dump());

    println!("--- execution ---");
    tf.wait_for_all(); // block until finish

    // The same taskflow can build and dispatch further graphs; dispatch()
    // is the non-blocking variant returning a shared future (§III-C).
    let (x, y) = rustflow::emplace!(tf, || println!("Task X"), || println!("Task Y"));
    y.precede(x); // this time Y runs before X
    let future = tf.dispatch();
    // ... overlap other work here ...
    future.wait();
    println!("second graph done: {:?}", future.try_get());
}
